// Package monitor implements 007's TCP monitoring agent (§3): it consumes
// retransmission events from the host's tracing bus (ETW/eBPF, package
// etw), counts retransmissions per flow per epoch, and triggers path
// discovery at most once per flow per epoch — the paper's first line of
// defence for the traceroute budget.
package monitor

import (
	"vigil/internal/ecmp"
	"vigil/internal/etw"
)

// Agent is one host's monitoring agent.
type Agent struct {
	trigger func(flow ecmp.FiveTuple)

	// RTTThresholdMicros, when positive, extends 007 to latency diagnosis
	// (§9.2): a flow whose smoothed RTT crosses the threshold is treated
	// as failed and triggers path discovery, so the voting scheme ranks
	// the links responsible for the delay.
	RTTThresholdMicros int64

	// The per-epoch maps are cleared — not reallocated — on epoch roll, so
	// the agent's memory is bounded by its busiest epoch rather than
	// growing with every flow the host ever carried.
	epoch     int64
	triggered map[ecmp.FiveTuple]bool // flows already traced this epoch
	retx      map[ecmp.FiveTuple]int  // flow → retransmissions this epoch
	slow      map[ecmp.FiveTuple]bool // flows over the RTT threshold
}

// New builds an agent; trigger is invoked (synchronously) the first time a
// flow retransmits in an epoch — normally wired to the path discovery
// agent.
func New(trigger func(flow ecmp.FiveTuple)) *Agent {
	return &Agent{
		trigger:   trigger,
		triggered: make(map[ecmp.FiveTuple]bool),
		retx:      make(map[ecmp.FiveTuple]int),
		slow:      make(map[ecmp.FiveTuple]bool),
	}
}

// Attach subscribes the agent to a host event bus and returns the
// matching detach — the idle-host teardown path: a detached agent stops
// consuming bus events without tearing down the bus's other subscribers.
func (a *Agent) Attach(bus *etw.Bus) (detach func()) {
	return bus.Subscribe(a.OnEvent)
}

// OnEvent handles one tracing event.
func (a *Agent) OnEvent(e etw.Event) {
	switch e.Kind {
	case etw.Retransmit:
		a.retx[e.Flow]++
	case etw.RTTSample:
		if a.RTTThresholdMicros <= 0 || e.SRTTMicros < a.RTTThresholdMicros {
			return
		}
		a.slow[e.Flow] = true
	default:
		return
	}
	if a.triggered[e.Flow] {
		return // already traced this epoch
	}
	a.triggered[e.Flow] = true
	if a.trigger != nil {
		a.trigger(e.Flow)
	}
}

// Retx returns the number of retransmissions the flow has suffered in the
// current epoch.
func (a *Agent) Retx(flow ecmp.FiveTuple) int { return a.retx[flow] }

// FlowsWithRetx returns how many distinct flows retransmitted this epoch.
func (a *Agent) FlowsWithRetx() int { return len(a.retx) }

// SlowFlows returns how many flows crossed the RTT threshold this epoch.
func (a *Agent) SlowFlows() int { return len(a.slow) }

// NewEpoch rolls the epoch: retransmission counts reset and every flow may
// trigger one more path discovery.
func (a *Agent) NewEpoch() {
	a.epoch++
	clear(a.triggered)
	clear(a.retx)
	clear(a.slow)
}
