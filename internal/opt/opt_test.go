package opt

import (
	"testing"
	"testing/quick"

	"vigil/internal/stats"
	"vigil/internal/topology"
	"vigil/internal/vote"
)

func rep(id int64, retx int, path ...topology.LinkID) vote.Report {
	return vote.Report{FlowID: id, Path: path, Retx: retx}
}

// The appendix-B example (Figure 15): link 2-4 drops; flows 1-2 and 3-2
// fail, flow 1-3 does not. Set cover must blame exactly the shared link.
func TestBinaryTomographyExample(t *testing.T) {
	reports := []vote.Report{
		rep(1, 1, 12, 24), // flow 1→2 via node 4, using links (1,2)=12,(2,4)=24... encoded as opaque IDs
		rep(2, 1, 34, 24), // flow 3→2
	}
	in := BuildInstance(reports)
	greedy := in.SolveBinaryGreedy()
	if len(greedy) != 1 || greedy[0] != 24 {
		t.Fatalf("greedy = %v, want [24]", greedy)
	}
	exact, ok := in.SolveBinaryExact(0)
	if !ok || len(exact) != 1 || exact[0] != 24 {
		t.Fatalf("exact = %v (ok=%v), want [24]", exact, ok)
	}
}

func TestBinaryExactBeatsGreedyWhenGreedyIsFooled(t *testing.T) {
	// Classic set-cover trap: a wide link covers many flows but two narrow
	// links cover all of them; greedy picks the wide one first and needs 3.
	reports := []vote.Report{
		rep(1, 1, 100, 1),
		rep(2, 1, 100, 1),
		rep(3, 1, 100, 2),
		rep(4, 1, 100, 2),
		rep(5, 1, 1),
		rep(6, 1, 2),
	}
	// Universe: link 100 covers flows 1-4; link 1 covers 1,2,5; link 2
	// covers 3,4,6. Optimal = {1,2}; greedy takes 100 then 1 then 2.
	in := BuildInstance(reports)
	greedy := in.SolveBinaryGreedy()
	exact, ok := in.SolveBinaryExact(0)
	if !ok {
		t.Fatal("exact solver gave up on a tiny instance")
	}
	if len(exact) != 2 {
		t.Fatalf("exact = %v, want 2 links", exact)
	}
	if len(greedy) != 3 {
		t.Fatalf("greedy = %v, want the 3-link trap", greedy)
	}
	if !in.Covers(exact) || !in.Covers(greedy) {
		t.Fatal("solutions do not cover")
	}
}

// Exact is never larger than greedy, and both always cover: checked over
// random instances.
func TestBinarySolversProperty(t *testing.T) {
	rng := stats.NewRNG(42)
	f := func(seed uint16) bool {
		r := stats.NewRNG(uint64(seed) | rng.Uint64()<<16)
		nFlows := r.IntRange(1, 12)
		nLinks := r.IntRange(2, 10)
		var reports []vote.Report
		for i := 0; i < nFlows; i++ {
			h := r.IntRange(1, 4)
			path := make([]topology.LinkID, h)
			for j := range path {
				path[j] = topology.LinkID(r.Intn(nLinks))
			}
			reports = append(reports, rep(int64(i), r.IntRange(1, 5), path...))
		}
		in := BuildInstance(reports)
		greedy := in.SolveBinaryGreedy()
		exact, ok := in.SolveBinaryExact(0)
		if !ok {
			return false
		}
		return in.Covers(greedy) && in.Covers(exact) && len(exact) <= len(greedy)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryExactPlantedFailure(t *testing.T) {
	// k planted bad links, each failing several disjoint flows: the exact
	// cover has size exactly k.
	rng := stats.NewRNG(7)
	for _, k := range []int{1, 2, 3} {
		var reports []vote.Report
		id := int64(0)
		for b := 0; b < k; b++ {
			bad := topology.LinkID(1000 + b)
			for i := 0; i < 5; i++ {
				id++
				reports = append(reports, rep(id, 1,
					bad,
					topology.LinkID(rng.Intn(50)),
					topology.LinkID(50+rng.Intn(50)),
				))
			}
		}
		in := BuildInstance(reports)
		exact, ok := in.SolveBinaryExact(0)
		if !ok {
			t.Fatalf("k=%d: exact gave up", k)
		}
		if len(exact) > k {
			t.Fatalf("k=%d: cover %v larger than planted set", k, exact)
		}
	}
}

func TestIntegerFeasibleAndRanked(t *testing.T) {
	// Bad link 9 drops a lot on two flows; link 5 sees one small flow.
	reports := []vote.Report{
		rep(1, 10, 9, 1, 2),
		rep(2, 8, 9, 3, 4),
		rep(3, 1, 5, 6),
	}
	in := BuildInstance(reports)
	sol := in.SolveInteger(stats.NewRNG(1))
	if !in.Feasible(sol.Drops) {
		t.Fatalf("integer solution infeasible: %v", sol.Drops)
	}
	ranking := sol.Ranking()
	if len(ranking) == 0 || ranking[0].Link != 9 {
		t.Fatalf("ranking = %+v, want link 9 first", ranking)
	}
	blame, ok := sol.BlameOnPath([]topology.LinkID{9, 1, 2})
	if !ok || blame != 9 {
		t.Fatalf("blame = %v/%v", blame, ok)
	}
}

// The integer solution must be feasible (Ap >= c) on random instances, and
// its support must cover all flows.
func TestIntegerFeasibilityProperty(t *testing.T) {
	rng := stats.NewRNG(99)
	f := func(seed uint16) bool {
		r := stats.NewRNG(uint64(seed)*2654435761 + 1)
		nFlows := r.IntRange(1, 15)
		nLinks := r.IntRange(2, 12)
		var reports []vote.Report
		for i := 0; i < nFlows; i++ {
			h := r.IntRange(1, 5)
			path := make([]topology.LinkID, h)
			for j := range path {
				path[j] = topology.LinkID(r.Intn(nLinks))
			}
			reports = append(reports, rep(int64(i), r.IntRange(1, 20), path...))
		}
		in := BuildInstance(reports)
		sol := in.SolveInteger(rng)
		return in.Feasible(sol.Drops) && in.Covers(sol.Links())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIntegerSupplyApproachesDemand(t *testing.T) {
	// Single bad link shared by all flows: ||p||1 should equal the largest
	// demand (covering all flows through one link), not the sum.
	reports := []vote.Report{
		rep(1, 3, 7, 1),
		rep(2, 5, 7, 2),
		rep(3, 2, 7, 3),
	}
	in := BuildInstance(reports)
	sol := in.SolveInteger(stats.NewRNG(2))
	if got := sol.Total(); got != 5 {
		t.Fatalf("||p||1 = %d, want 5", got)
	}
	if len(sol.Links()) != 1 || sol.Links()[0] != 7 {
		t.Fatalf("support = %v, want [7]", sol.Links())
	}
}

func TestEmptyInstance(t *testing.T) {
	in := BuildInstance(nil)
	if got := in.SolveBinaryGreedy(); len(got) != 0 {
		t.Fatalf("greedy on empty = %v", got)
	}
	if got, ok := in.SolveBinaryExact(0); !ok || len(got) != 0 {
		t.Fatalf("exact on empty = %v/%v", got, ok)
	}
	sol := in.SolveInteger(stats.NewRNG(1))
	if len(sol.Drops) != 0 {
		t.Fatalf("integer on empty = %v", sol.Drops)
	}
	if in.Flows() != 0 {
		t.Fatal("empty instance has flows")
	}
}

func TestEmptyPathsIgnored(t *testing.T) {
	in := BuildInstance([]vote.Report{{FlowID: 1, Retx: 2}})
	if in.Flows() != 0 {
		t.Fatal("empty-path report created a constraint")
	}
}

func TestBinaryExactBudgetExhaustion(t *testing.T) {
	// With a 1-node budget the solver must fall back to greedy.
	var reports []vote.Report
	rng := stats.NewRNG(5)
	for i := 0; i < 30; i++ {
		reports = append(reports, rep(int64(i), 1,
			topology.LinkID(rng.Intn(20)), topology.LinkID(20+rng.Intn(20))))
	}
	in := BuildInstance(reports)
	got, ok := in.SolveBinaryExact(1)
	if ok {
		t.Fatal("1-node budget reported an exact solution")
	}
	if !in.Covers(got) {
		t.Fatal("fallback does not cover")
	}
}

func BenchmarkBinaryGreedy(b *testing.B) {
	rng := stats.NewRNG(1)
	var reports []vote.Report
	for i := 0; i < 500; i++ {
		reports = append(reports, rep(int64(i), 1,
			topology.LinkID(rng.Intn(100)),
			topology.LinkID(100+rng.Intn(100)),
			topology.LinkID(200+rng.Intn(100)),
		))
	}
	in := BuildInstance(reports)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.SolveBinaryGreedy()
	}
}

func BenchmarkInteger(b *testing.B) {
	rng := stats.NewRNG(1)
	var reports []vote.Report
	for i := 0; i < 200; i++ {
		reports = append(reports, rep(int64(i), rng.IntRange(1, 10),
			topology.LinkID(rng.Intn(50)),
			topology.LinkID(50+rng.Intn(50)),
		))
	}
	in := BuildInstance(reports)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.SolveInteger(stats.NewRNG(2))
	}
}
