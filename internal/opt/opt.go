// Package opt implements the optimization-based baselines of §5.3 that the
// paper benchmarks 007 against.
//
// The binary program (3) finds the smallest set of links explaining every
// failed flow — minimum set cover, NP-hard. We provide the greedy
// approximation (Algorithm 2, equivalent to MAX COVERAGE and Tomo) and an
// exact branch-and-bound solver standing in for the paper's MILP solver on
// the instance sizes where exact solutions are tractable.
//
// The integer program (4) additionally assigns a per-link drop count,
// producing the ranking the paper's "integer optimization" curves use. We
// solve it greedily and tighten with local search; tests cross-check the
// solvers against brute force on small instances.
package opt

import (
	"sort"

	"vigil/internal/topology"
	"vigil/internal/vote"
)

// Instance is one epoch's localization problem: the failed flows (rows of
// the routing matrix A restricted to s=1) and the candidate links (columns
// touched by at least one failed path).
type Instance struct {
	Links   []topology.LinkID // candidate universe
	linkIdx map[topology.LinkID]int
	paths   [][]int // per flow: indices into Links
	demand  []int   // per flow: retransmission count c_i (>= 1)
	byLink  [][]int // per link: flow indices through it
}

// BuildInstance constructs the problem from 007's reports. Reports with
// empty paths are ignored (they constrain nothing).
func BuildInstance(reports []vote.Report) *Instance {
	in := &Instance{linkIdx: make(map[topology.LinkID]int)}
	for _, r := range reports {
		if len(r.Path) == 0 {
			continue
		}
		path := make([]int, len(r.Path))
		for i, l := range r.Path {
			idx, ok := in.linkIdx[l]
			if !ok {
				idx = len(in.Links)
				in.linkIdx[l] = idx
				in.Links = append(in.Links, l)
				in.byLink = append(in.byLink, nil)
			}
			path[i] = idx
			in.byLink[idx] = append(in.byLink[idx], len(in.paths))
		}
		d := r.Retx
		if d < 1 {
			d = 1
		}
		in.paths = append(in.paths, path)
		in.demand = append(in.demand, d)
	}
	return in
}

// Flows returns the number of failed flows in the instance.
func (in *Instance) Flows() int { return len(in.paths) }

// SolveBinaryGreedy is Algorithm 2: repeatedly pick the link explaining the
// most still-unexplained failures. This is the greedy set cover used by
// MAX COVERAGE and Tomo [10, 11].
func (in *Instance) SolveBinaryGreedy() []topology.LinkID {
	covered := make([]bool, len(in.paths))
	remaining := len(in.paths)
	var out []topology.LinkID
	for remaining > 0 {
		best, bestCover := -1, 0
		for li := range in.Links {
			c := 0
			for _, fi := range in.byLink[li] {
				if !covered[fi] {
					c++
				}
			}
			if c > bestCover {
				best, bestCover = li, c
			}
		}
		if best < 0 {
			break // unexplainable flows (empty paths filtered earlier)
		}
		out = append(out, in.Links[best])
		for _, fi := range in.byLink[best] {
			if !covered[fi] {
				covered[fi] = true
				remaining--
			}
		}
	}
	sortLinks(out)
	return out
}

// SolveBinaryExact solves the binary program exactly by branch and bound,
// exploring at most maxNodes search nodes. It returns the optimal cover and
// true, or the greedy solution and false when the node budget runs out —
// mirroring how the paper falls back from the MILP at scale.
func (in *Instance) SolveBinaryExact(maxNodes int) ([]topology.LinkID, bool) {
	greedy := in.SolveBinaryGreedy()
	if len(in.paths) == 0 {
		return nil, true
	}
	if maxNodes <= 0 {
		maxNodes = 200000
	}
	bb := &coverSearch{in: in, bestSize: len(greedy), budget: maxNodes}
	bb.best = make([]int, 0, len(greedy))
	covered := make([]int, len(in.paths)) // cover multiplicity per flow
	bb.search(covered, len(in.paths), nil)
	if bb.exhausted {
		return greedy, false
	}
	out := make([]topology.LinkID, len(bb.best))
	for i, li := range bb.best {
		out[i] = in.Links[li]
	}
	sortLinks(out)
	return out, true
}

type coverSearch struct {
	in        *Instance
	best      []int
	bestSize  int
	found     bool
	budget    int
	exhausted bool
}

func (s *coverSearch) search(covered []int, uncovered int, chosen []int) {
	if s.budget <= 0 {
		s.exhausted = true
		return
	}
	s.budget--
	if uncovered == 0 {
		if len(chosen) < s.bestSize || !s.found {
			s.bestSize = len(chosen)
			s.best = append(s.best[:0], chosen...)
			s.found = true
		}
		return
	}
	// Lower bound: even the widest link covers at most maxCover new flows.
	maxCover := 0
	for li := range s.in.Links {
		c := 0
		for _, fi := range s.in.byLink[li] {
			if covered[fi] == 0 {
				c++
			}
		}
		if c > maxCover {
			maxCover = c
		}
	}
	if maxCover == 0 {
		return
	}
	need := (uncovered + maxCover - 1) / maxCover
	if len(chosen)+need > s.bestSize || (len(chosen)+need == s.bestSize && s.found) {
		return
	}
	// Branch on the hardest flow: fewest candidate links.
	pick, pickDeg := -1, int(^uint(0)>>1)
	for fi, c := range covered {
		if c > 0 {
			continue
		}
		deg := len(s.in.paths[fi])
		if deg < pickDeg {
			pick, pickDeg = fi, deg
		}
	}
	// Try that flow's links, widest coverage first.
	cands := append([]int(nil), s.in.paths[pick]...)
	sort.Slice(cands, func(a, b int) bool {
		return len(s.in.byLink[cands[a]]) > len(s.in.byLink[cands[b]])
	})
	seen := make(map[int]bool, len(cands))
	for _, li := range cands {
		if seen[li] {
			continue
		}
		seen[li] = true
		newly := 0
		for _, fi := range s.in.byLink[li] {
			if covered[fi] == 0 {
				newly++
			}
			covered[fi]++
		}
		s.search(covered, uncovered-newly, append(chosen, li))
		for _, fi := range s.in.byLink[li] {
			covered[fi]--
		}
		if s.exhausted {
			return
		}
	}
}

func sortLinks(ls []topology.LinkID) {
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
}
