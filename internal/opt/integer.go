package opt

import (
	"sort"

	"vigil/internal/stats"
	"vigil/internal/topology"
	"vigil/internal/vote"
)

// IntegerSolution assigns a drop count to each blamed link — the solution
// vector p of program (4). Non-zero entries are the predicted failed links;
// magnitudes give the ranking.
type IntegerSolution struct {
	Drops map[topology.LinkID]int
}

// Links returns the support of p (predicted failed links), sorted.
func (s IntegerSolution) Links() []topology.LinkID {
	out := make([]topology.LinkID, 0, len(s.Drops))
	for l, d := range s.Drops {
		if d > 0 {
			out = append(out, l)
		}
	}
	sortLinks(out)
	return out
}

// FailedLinks applies the integer program's extra information — assigned
// drop counts — to the detection decision: links explaining only a lone
// drop are noise by the paper's own definition (§6), so the predicted
// failed set is the links with at least minDrops assigned. The paper's
// integer-optimization curves correspond to minDrops = 2.
func (s IntegerSolution) FailedLinks(minDrops int) []topology.LinkID {
	out := make([]topology.LinkID, 0, len(s.Drops))
	for l, d := range s.Drops {
		if d >= minDrops {
			out = append(out, l)
		}
	}
	sortLinks(out)
	return out
}

// Ranking orders links by descending assigned drops.
func (s IntegerSolution) Ranking() []vote.LinkVotes {
	out := make([]vote.LinkVotes, 0, len(s.Drops))
	for l, d := range s.Drops {
		if d > 0 {
			out = append(out, vote.LinkVotes{Link: l, Votes: float64(d)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Votes != out[j].Votes {
			return out[i].Votes > out[j].Votes
		}
		return out[i].Link < out[j].Link
	})
	return out
}

// BlameOnPath returns the path link with the highest assigned drop count,
// the integer program's per-flow verdict.
func (s IntegerSolution) BlameOnPath(path []topology.LinkID) (topology.LinkID, bool) {
	best := topology.NoLink
	bestD := 0
	for _, l := range path {
		if d := s.Drops[l]; d > bestD {
			best, bestD = l, d
		}
	}
	return best, best != topology.NoLink
}

// Total returns ||p||1.
func (s IntegerSolution) Total() int {
	t := 0
	for _, d := range s.Drops {
		t += d
	}
	return t
}

// SolveInteger approximates program (4): cover every flow's retransmission
// count with per-link drop assignments, preferring few links (min ||p||0),
// then prune and rebalance so the supply approaches ||c||1.
//
// Greedy phase: repeatedly pick the link with the largest total unmet
// demand across its flows and give it the largest single unmet demand among
// them (enough to fully satisfy at least one flow). Pruning phase: drop any
// link whose removal leaves all flows covered; rebalance trims each link's
// assignment to the minimum that keeps its flows satisfied, pushing ||p||1
// toward ||c||1 as the equality constraint demands.
func (in *Instance) SolveInteger(rng *stats.RNG) IntegerSolution {
	supply := make([]int, len(in.Links))
	unmet := make([]int, len(in.paths))
	remaining := 0
	for i, d := range in.demand {
		unmet[i] = d
		remaining += d
	}
	met := func(fi int) int {
		got := 0
		for _, li := range in.paths[fi] {
			got += supply[li]
		}
		return got
	}
	for remaining > 0 {
		best, bestScore, bestMax := -1, 0, 0
		for li := range in.Links {
			score, maxU := 0, 0
			for _, fi := range in.byLink[li] {
				u := unmet[fi]
				score += u
				if u > maxU {
					maxU = u
				}
			}
			if score > bestScore {
				best, bestScore, bestMax = li, score, maxU
			}
		}
		if best < 0 {
			break
		}
		supply[best] += bestMax
		for _, fi := range in.byLink[best] {
			if unmet[fi] == 0 {
				continue
			}
			u := in.demand[fi] - met(fi)
			if u < 0 {
				u = 0
			}
			remaining -= unmet[fi] - u
			unmet[fi] = u
		}
	}

	// Prune: remove redundant links in random order (the local search's
	// only stochastic step; a fixed rng keeps runs reproducible).
	order := rng.Perm(len(in.Links))
	for _, li := range order {
		if supply[li] == 0 {
			continue
		}
		old := supply[li]
		supply[li] = 0
		ok := true
		for _, fi := range in.byLink[li] {
			if met(fi) < in.demand[fi] {
				ok = false
				break
			}
		}
		if !ok {
			supply[li] = old
		}
	}
	// Rebalance: shrink each assignment to the binding minimum. Shrinking
	// link li by d reduces a flow's coverage by d times the number of times
	// li appears on its path, so the allowed cut is slack/multiplicity.
	for li := range in.Links {
		if supply[li] == 0 {
			continue
		}
		if len(in.byLink[li]) == 0 {
			supply[li] = 0
			continue
		}
		maxCut := supply[li]
		for _, fi := range in.byLink[li] {
			mult := 0
			for _, pl := range in.paths[fi] {
				if pl == li {
					mult++
				}
			}
			if cut := (met(fi) - in.demand[fi]) / mult; cut < maxCut {
				maxCut = cut
			}
		}
		if maxCut > 0 {
			supply[li] -= maxCut
		}
	}

	sol := IntegerSolution{Drops: make(map[topology.LinkID]int)}
	for li, s := range supply {
		if s > 0 {
			sol.Drops[in.Links[li]] = s
		}
	}
	return sol
}

// Feasible reports whether assignment p satisfies Ap >= c.
func (in *Instance) Feasible(p map[topology.LinkID]int) bool {
	for fi, path := range in.paths {
		got := 0
		for _, li := range path {
			got += p[in.Links[li]]
		}
		if got < in.demand[fi] {
			return false
		}
	}
	return true
}

// Covers reports whether the link set covers every failed flow (the binary
// program's constraint).
func (in *Instance) Covers(links []topology.LinkID) bool {
	set := make(map[topology.LinkID]bool, len(links))
	for _, l := range links {
		set[l] = true
	}
	for _, path := range in.paths {
		ok := false
		for _, li := range path {
			if set[in.Links[li]] {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}
