// Hottor explores the paper's skewed-traffic results (Fig. 8, Fig. 9): a
// single ToR acts as a sink for a growing share of all flows while several
// links fail at once, and 007 is compared against the set-cover
// optimization it outperforms in exactly this regime.
package main

import (
	"fmt"
	"log"

	"vigil"
	"vigil/internal/metrics"
	"vigil/internal/netem"
	"vigil/internal/opt"
	"vigil/internal/stats"
)

func main() {
	fmt.Println("hot-ToR skew vs localization (5 failed links, U(0.05%,1%) rates)")
	fmt.Printf("%8s  %16s  %16s\n", "skew", "007 accuracy", "set-cover recall")
	for _, skew := range []float64{0.1, 0.3, 0.5, 0.7} {
		acc, rec := run(skew)
		fmt.Printf("%7.0f%%  %16.3f  %16.3f\n", skew*100, acc, rec)
	}
	fmt.Println("\nThe paper's Fig. 9: up to 50% skew costs 007 almost nothing;")
	fmt.Println("the optimization's constraints collapse much earlier (Fig. 8b).")
}

func run(skew float64) (acc007, recallBinary float64) {
	sim, err := vigil.NewSimulation(vigil.SimConfig{
		Seed: uint64(1000 * skew),
	})
	if err != nil {
		log.Fatal(err)
	}
	topo := sim.Topology()
	// Rebuild the workload with the hot sink.
	sim2, err := vigil.NewSimulation(vigil.SimConfig{
		Workload: vigil.Workload{
			Pattern:        vigil.HotToRTraffic(topo.ToR(0, 0), skew),
			ConnsPerHost:   vigil.IntRange{Lo: 60, Hi: 60},
			PacketsPerFlow: vigil.IntRange{Lo: 100, Hi: 100},
		},
		Seed: uint64(1000*skew) + 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	topo = sim2.Topology()
	rng := stats.NewRNG(uint64(7 + 100*skew))
	pool := topo.LinksOfClass(vigil.L1Up)
	var bad []vigil.LinkID
	for i := 0; i < 5; i++ {
		l := pool[rng.Intn(len(pool))]
		sim2.InjectFailure(l, rng.Uniform(0.0005, 0.01))
		bad = append(bad, l)
	}
	rep := sim2.RunEpoch()

	// Baseline: greedy set cover (MAX COVERAGE / Tomo) over the same
	// reports, reconstructed from the verdict-carrying epoch.
	// For the comparison we re-run the raw pipeline on a fresh epoch with
	// identical parameters (the public API keeps reports internal).
	reports := rawReports(topo, bad, skew)
	in := opt.BuildInstance(reports)
	d := metrics.ScoreDetection(in.SolveBinaryGreedy(), bad)
	return rep.Accuracy, d.Recall
}

// rawReports produces one epoch of reports with the internal simulator for
// the baseline comparison.
func rawReports(topo *vigil.Topology, bad []vigil.LinkID, skew float64) []vigil.Report {
	sim, err := netem.New(netem.Config{
		Topo: topo,
		Workload: vigil.Workload{
			Pattern:        vigil.HotToRTraffic(topo.ToR(0, 0), skew),
			ConnsPerHost:   vigil.IntRange{Lo: 60, Hi: 60},
			PacketsPerFlow: vigil.IntRange{Lo: 100, Hi: 100},
		},
		NoiseLo: 0, NoiseHi: 1e-6,
		Seed: uint64(2000*skew) + 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	rng := stats.NewRNG(99)
	for _, l := range bad {
		sim.InjectFailure(l, rng.Uniform(0.0005, 0.01))
	}
	return sim.RunEpoch().Reports
}
