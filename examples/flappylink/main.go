// Flappylink: a link that keeps going bad and recovering — the classic
// gray-failure pager mystery. Run the built-in link-flap scenario, then
// script a custom flap + intermittent combination through the public
// scheduling API, and watch 007 track the failure set epoch by epoch.
package main

import (
	"fmt"
	"log"

	"vigil"
)

func main() {
	// Part 1: the named scenario. Two links flap with staggered duty
	// cycles; every epoch is scored against that epoch's ground truth.
	res, err := vigil.RunScenario("link-flap", vigil.ScenarioConfig{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("link-flap scenario:")
	for _, es := range res.Epochs {
		bar := ""
		for range es.ActiveLinks {
			bar += "#"
		}
		fmt.Printf("  epoch %2d  active %-2s detected %d (tp %d fp %d fn %d)\n",
			es.Epoch, bar, len(es.Detected),
			es.Detection.TruePos, es.Detection.FalsePos, es.Detection.FalseNeg)
	}
	fmt.Printf("pooled: precision %.3f, recall %.3f, accuracy %.3f\n\n",
		res.Precision, res.Recall, res.Accuracy)

	// Part 2: the same machinery on a custom simulation. A ToR uplink
	// flaps every third epoch; a T2 downlink drops intermittently.
	sim, err := vigil.NewSimulation(vigil.SimConfig{
		Topology: vigil.TopologyConfig{Pods: 2, ToRsPerPod: 8, T1PerPod: 8, T2: 4, HostsPerToR: 8},
		Seed:     11,
	})
	if err != nil {
		log.Fatal(err)
	}
	topo := sim.Topology()
	flappy := topo.LinksOfClass(vigil.L1Up)[9]
	flaky := topo.LinksOfClass(vigil.L2Down)[3]
	if err := sim.ScheduleFailure(flappy, vigil.Flap{Rate: 0.008, Period: 3, On: 1}); err != nil {
		log.Fatal(err)
	}
	if err := sim.ScheduleFailure(flaky, vigil.Intermittent{Rate: 0.004, Prob: 0.4, Seed: 99}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("custom schedules: %s flaps 1-in-3, %s drops in ~40%% of epochs\n",
		vigil.LinkName(topo, flappy), vigil.LinkName(topo, flaky))
	for e := 0; e < 9; e++ {
		rep := sim.RunEpoch()
		fmt.Printf("  epoch %d: %d active, detected %d, recall %.1f, drops %d\n",
			e, len(rep.FailedLinks), len(rep.Detected), rep.Detection.Recall, rep.TotalDrops)
	}
}
