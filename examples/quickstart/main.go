// Quickstart: build the paper's simulated datacenter, break one link, run
// one 30-second epoch, and let 007 find the culprit.
package main

import (
	"fmt"
	"log"

	"vigil"
)

func main() {
	sim, err := vigil.NewSimulation(vigil.SimConfig{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	topo := sim.Topology()

	// Break one ToR→T1 link: it silently drops 0.5% of packets —
	// invisible to SNMP counters, very visible to the VMs behind it.
	bad := topo.LinksOfClass(vigil.L1Up)[17]
	sim.InjectFailure(bad, 0.005)
	fmt.Printf("injected: 0.5%% loss on %s\n\n", vigil.LinkName(topo, bad))

	rep := sim.RunEpoch()
	fmt.Printf("epoch: %d flows, %d with drops, %d packets lost\n\n",
		rep.TotalFlows, rep.FailedFlows, rep.TotalDrops)

	fmt.Println("007's vote ranking (top 5):")
	for i, lv := range rep.Ranking {
		if i >= 5 {
			break
		}
		tag := ""
		if lv.Link == bad {
			tag = "  <-- the broken link"
		}
		fmt.Printf("  %6.2f  %s%s\n", lv.Votes, vigil.LinkName(topo, lv.Link), tag)
	}

	fmt.Println("\nAlgorithm 1 detections:")
	for _, l := range rep.Detected {
		fmt.Printf("  %s\n", vigil.LinkName(topo, l))
	}
	fmt.Printf("\nper-flow blame accuracy: %.1f%% over %d affected flows\n",
		rep.Accuracy*100, rep.FlowsScored)
	fmt.Printf("detection precision %.2f, recall %.2f\n",
		rep.Detection.Precision, rep.Detection.Recall)
}
