// Livecluster runs the paper's test-cluster evaluation (§7) end to end on
// the packet plane: hosts with real 007 agents, traceroute probes through
// the emulated fabric, vote reports over genuine loopback TCP to a
// centralized collector, and EverFlow mirrors cross-validating every
// discovered path (§8.2).
package main

import (
	"fmt"
	"log"
	"net"

	"vigil"
	"vigil/internal/cluster"
	"vigil/internal/everflow"
	"vigil/internal/stats"
	"vigil/internal/topology"
	"vigil/internal/vote"
)

func main() {
	topo, err := vigil.NewTopology(vigil.TestClusterTopology)
	if err != nil {
		log.Fatal(err)
	}
	em, err := vigil.NewEmulation(vigil.EmulationConfig{Topo: topo, Seed: 21})
	if err != nil {
		log.Fatal(err)
	}

	// EverFlow mirrors on all switches (ground truth oracle).
	ef := everflow.New(topo, nil)
	em.Net.AddTap(ef.Tap())

	// Reports travel over real loopback TCP, as in Figure 2.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := cluster.ServeCollector(em.Agent, ln)
	defer srv.Close()
	rep, err := cluster.DialReporter(srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer rep.Close()
	var reports []vote.Report
	em.Reporter = func(r vote.Report) {
		reports = append(reports, r)
		if err := rep.Report(r); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("collector on %s\n", srv.Addr())

	// The §7.3 experiment: two T1→ToR links with different drop rates.
	hi := topo.LinksOfClass(vigil.L1Down)[9]
	lo := topo.LinksOfClass(vigil.L1Down)[30]
	if err := em.InjectFailure(hi, 0.002); err != nil {
		log.Fatal(err)
	}
	if err := em.InjectFailure(lo, 0.001); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("injected 0.2%% on %s, 0.1%% on %s\n\n",
		vigil.LinkName(topo, hi), vigil.LinkName(topo, lo))

	rng := stats.NewRNG(3)
	for epoch := 0; epoch < 4; epoch++ {
		em.StartWorkload(vigil.Workload{
			Pattern:        vigil.UniformTraffic(),
			ConnsPerHost:   vigil.IntRange{Lo: 6, Hi: 6},
			PacketsPerFlow: vigil.IntRange{Lo: 50, Hi: 100},
		}, 20*vigil.Second)
		_ = rng
		res := em.RunEpoch()
		fmt.Printf("epoch %d: %d reports (%d over TCP). ranking:\n",
			epoch, res.Tally.Flows(), srv.Received)
		for i, lv := range res.Ranking {
			if i >= 4 {
				break
			}
			tag := ""
			if lv.Link == hi {
				tag = "  <-- 0.2% link"
			}
			if lv.Link == lo {
				tag = "  <-- 0.1% link"
			}
			fmt.Printf("  #%d %6.2f  %s%s\n", i+1, lv.Votes, topo.LinkName(lv.Link), tag)
		}
	}

	// §8.2 cross-validation: every complete 007 path must equal the
	// mirrored data path.
	checked, matched := 0, 0
	for _, r := range reports {
		if r.Partial {
			continue
		}
		var want []topology.LinkID
		var ok bool
		for _, f := range em.Flows() {
			if f.ID() == r.FlowID {
				want, ok = ef.PathOf(f.WireTuple())
				break
			}
		}
		if !ok {
			continue
		}
		checked++
		if len(want) == len(r.Path) {
			same := true
			for i := range want {
				if want[i] != r.Path[i] {
					same = false
					break
				}
			}
			if same {
				matched++
			}
		}
	}
	fmt.Printf("\nEverFlow cross-validation: %d/%d discovered paths match the data path\n",
		matched, checked)
}
