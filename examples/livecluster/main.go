// Livecluster runs the paper's deployment shape (Figure 2) split across a
// real network boundary: a packet-plane engine drives emulated hosts whose
// vote reports stream over the resumable ingest transport — loopback TCP
// through a wire-level fault proxy — to a networked collector that settles
// epochs on the watermark. Mid-run, the proxy severs every connection to
// demonstrate the robustness headline: the agent session reconnects,
// resumes from the collector's watermark, and every epoch still settles
// exactly once.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"sync"

	"vigil/internal/engine"
	"vigil/internal/ingest"
	"vigil/internal/metrics"
	"vigil/internal/scenario"
	"vigil/internal/stats"
	"vigil/internal/topology"
	"vigil/internal/transport"
)

func main() {
	topo, err := topology.New(scenario.PacketQuickTopo)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := engine.New(engine.Config{Plane: engine.Packet, Topo: topo, Seed: 21})
	if err != nil {
		log.Fatal(err)
	}

	// The §7.3 experiment: two links with different drop rates.
	hi := topo.LinksOfClass(topology.L1Down)[3]
	lo := topo.LinksOfClass(topology.L1Down)[7]
	if err := eng.InjectFailure(hi, 0.02); err != nil {
		log.Fatal(err)
	}
	if err := eng.InjectFailure(lo, 0.01); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("injected 2%% on %s, 1%% on %s\n",
		topo.LinkName(hi), topo.LinkName(lo))

	// Collector end: the networked settle stage on loopback TCP.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	const epochs = 4
	var proxy *transport.Proxy
	var cutOnce sync.Once
	settled := 0
	col, err := ingest.ServeCollector(ingest.CollectorConfig{
		Listener: ln,
		Sink: func(res *engine.EpochResult) {
			settled++
			fmt.Printf("epoch %d settled over the wire: %d reports, %d detected\n",
				res.Epoch, len(res.Reports), len(res.Detected))
			for i, lv := range res.Ranking {
				if i >= 3 {
					break
				}
				tag := ""
				if lv.Link == hi {
					tag = "  <-- 2% link"
				}
				if lv.Link == lo {
					tag = "  <-- 1% link"
				}
				fmt.Printf("  #%d %6.2f  %s%s\n", i+1, lv.Votes, topo.LinkName(lv.Link), tag)
			}
			// Mid-run, sever every live connection: the session must
			// reconnect, resume from the collector's watermark, and lose
			// nothing.
			cutOnce.Do(func() {
				n := proxy.CutAll()
				fmt.Printf("--- severed %d live connection(s) mid-run; agent must resume ---\n", n)
			})
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer col.Close()

	// The wire between agent and collector runs through a fault proxy so
	// the reconnect is a real TCP-level event, not a simulated one.
	proxy, err = transport.NewProxy("127.0.0.1:0", transport.ProxyConfig{
		Target: col.Addr(),
		Seed:   stats.NewRNG(3).Uint64(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer proxy.Close()
	fmt.Printf("collector on %s, agents dial the fault proxy on %s\n\n",
		col.Addr(), proxy.Addr())

	// Agent end: drive the packet engine and stream everything over one
	// resumable session.
	ctr := &metrics.TransportCounters{}
	if err := ingest.RunAgent(context.Background(), ingest.AgentConfig{
		Engine:   eng,
		Addr:     proxy.Addr(),
		Epochs:   epochs,
		Seed:     21,
		Counters: ctr,
	}); err != nil {
		log.Fatal(err)
	}
	if err := col.Wait(context.Background()); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%d/%d epochs settled exactly once across %d injected cut(s): %d reconnect(s), %d resume(s), %d frame(s) replayed\n",
		settled, epochs, proxy.InjCuts.Load(), ctr.Reconnects.Load(),
		ctr.Resumes.Load(), ctr.FramesResent.Load())
	if settled != epochs || ctr.Resumes.Load() < 1 {
		log.Fatal("livecluster: expected every epoch settled and at least one resume")
	}
}
