// Storagefleet reproduces the paper's motivating scenario (§1, Appendix A):
// VM images are mounted from a VIP-fronted storage service, so even a
// briefly lossy link makes VMs "panic" and reboot — and 17% of reboots
// used to go unexplained. Here every storage connection that gives up is a
// reboot event, and 007 names the link that caused each one.
package main

import (
	"fmt"
	"log"

	"vigil"
	"vigil/internal/stats"
)

func main() {
	topo, err := vigil.NewTopology(vigil.TestClusterTopology)
	if err != nil {
		log.Fatal(err)
	}
	em, err := vigil.NewEmulation(vigil.EmulationConfig{Topo: topo, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// One storage service behind a VIP, four backends across two racks.
	vip := vigil.ServiceVIP(1)
	backends := []vigil.HostID{
		topo.HostAt(0, 8, 0), topo.HostAt(0, 8, 1),
		topo.HostAt(0, 9, 0), topo.HostAt(0, 9, 1),
	}
	if err := vigil.RegisterVIP(em, vip, backends); err != nil {
		log.Fatal(err)
	}

	// The gremlin: a backend's ToR→host link drops most packets — the
	// §8.3 finding that host-ToR links explain the majority of reboots.
	bad := topo.Hosts[backends[0]].Downlink
	if err := em.InjectFailure(bad, 0.7); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("storage service at VIP with %d backends\n", len(backends))
	fmt.Printf("injected: 70%% loss on %s\n\n", vigil.LinkName(topo, bad))

	// Every host keeps mounting VM images over the VIP.
	rng := stats.NewRNG(9)
	for i := 0; i < 120; i++ {
		src := vigil.HostID(rng.Intn(len(topo.Hosts)))
		at := vigil.Duration(rng.Intn(int(20 * vigil.Second)))
		if err := em.StartVIPFlow(src, vip, 443, 80, at); err != nil {
			log.Fatal(err)
		}
	}
	res := em.RunEpoch()

	reboots := 0
	explained := 0
	byFlow := make(map[int64]vigil.Verdict)
	for _, v := range res.Verdicts {
		byFlow[v.FlowID] = v
	}
	fmt.Println("VM reboot events and 007's verdicts:")
	for _, f := range em.Flows() {
		c := f.Conn()
		if c == nil || !c.Failed {
			continue
		}
		reboots++
		host := topo.Hosts[flowSrc(topo, f.WireTuple().SrcIP)].Name
		if v, ok := byFlow[f.ID()]; ok && v.Link >= 0 {
			explained++
			fmt.Printf("  VM on %-18s rebooted — cause: %s\n",
				host, vigil.LinkName(topo, v.Link))
		} else {
			fmt.Printf("  VM on %-18s rebooted — unexplained\n", host)
		}
	}
	fmt.Printf("\n%d reboots, %d explained by 007 (the paper's tooling explained <30%%)\n",
		reboots, explained)
	if len(res.Ranking) > 0 {
		fmt.Printf("top suspect overall: %s (%.1f votes)\n",
			vigil.LinkName(topo, res.Ranking[0].Link), res.Ranking[0].Votes)
	}
}

// flowSrc maps a source IP back to its host.
func flowSrc(topo *vigil.Topology, ip uint32) vigil.HostID {
	if n, ok := topo.LookupIP(ip); ok {
		return vigil.HostID(n.ID)
	}
	return 0
}
