module vigil

go 1.24
