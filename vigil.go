// Package vigil is a from-scratch reproduction of "007: Democratically
// Finding the Cause of Packet Drops" (Arzani et al., NSDI 2018): an
// always-on, host-side fault localization system for datacenter networks,
// together with the substrates needed to evaluate it — a Clos topology
// model, seeded ECMP routing, a flow-level simulator, a packet-level
// fabric emulation with crafted-probe traceroutes and ICMP rate limiting,
// a software load balancer, optimization baselines, and the full
// experiment harness regenerating every table and figure of the paper.
//
// The package exposes three entry points:
//
//   - Simulation: the flow-level plane (§6 of the paper). Fast, scales to
//     the paper's 4160-link datacenter; used for accuracy/precision/recall
//     sweeps.
//   - Emulation: the packet-level plane (§7, §8). Every host runs real 007
//     agents over an emulated switching fabric: retransmissions come from
//     a TCP-like stack, paths from real traceroute probes, and reports can
//     travel over loopback TCP.
//   - Experiments: the per-figure/table runners behind cmd/vigil-lab.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-vs-measured results.
package vigil

import (
	"fmt"

	"vigil/internal/cluster"
	"vigil/internal/des"
	"vigil/internal/ecmp"
	"vigil/internal/engine"
	"vigil/internal/experiments"
	"vigil/internal/metrics"
	"vigil/internal/report"
	"vigil/internal/scenario"
	"vigil/internal/schedule"
	"vigil/internal/slb"
	"vigil/internal/theory"
	"vigil/internal/topology"
	"vigil/internal/traffic"
	"vigil/internal/vote"
)

// Core identifier and configuration types, re-exported from the internal
// packages so the public API is self-contained.
type (
	// Topology is a built Clos network (switches, hosts, directed links).
	Topology = topology.Topology
	// TopologyConfig sizes a Clos in the paper's notation (npod, n0, n1,
	// n2, H).
	TopologyConfig = topology.Config
	// DatacenterConfig sizes a multi-cluster Clos: groups of pods meshed
	// through one shared global spine, the §7 deployment shape.
	DatacenterConfig = topology.DatacenterConfig
	// LinkID identifies a directed link.
	LinkID = topology.LinkID
	// LinkClass is a link's role (host-ToR, ToR-T1, T1-T2 and reverses).
	LinkClass = topology.LinkClass
	// HostID identifies an end host.
	HostID = topology.HostID
	// SwitchID identifies a switch.
	SwitchID = topology.SwitchID
	// FiveTuple identifies a flow.
	FiveTuple = ecmp.FiveTuple
	// Workload describes an epoch of traffic.
	Workload = traffic.Workload
	// IntRange is an inclusive range used by workload knobs.
	IntRange = traffic.IntRange
	// Report is one host agent's per-flow report to the analysis agent.
	Report = vote.Report
	// LinkVotes pairs a link with its vote tally.
	LinkVotes = vote.LinkVotes
	// Verdict is 007's per-flow conclusion.
	Verdict = vote.Verdict
	// DetectOptions configures Algorithm 1.
	DetectOptions = vote.DetectOptions
	// Detection carries precision/recall of a detected link set.
	Detection = metrics.Detection
	// FlowTruth is ground truth for one failed flow.
	FlowTruth = metrics.FlowTruth
	// Emulation is the packet-level multi-node emulation (§7/§8 plane).
	Emulation = cluster.Cluster
	// EmulationConfig assembles an Emulation.
	EmulationConfig = cluster.Config
	// Duration is virtual time in microseconds (packet plane).
	Duration = des.Time
	// Table is a rendered experiment table.
	Table = report.Table
	// ExperimentOptions configures an experiment run.
	ExperimentOptions = experiments.Options
	// ExperimentResult is one experiment's tables and notes.
	ExperimentResult = experiments.Result
	// Experiment is a registered table/figure runner.
	Experiment = experiments.Runner
	// RateSchedule scripts a link's drop rate per epoch (dynamic failures).
	// The shapes below are shared by both planes (internal/schedule).
	RateSchedule = schedule.RateSchedule
	// ConstantRate fails a link at a fixed rate in every epoch.
	ConstantRate = schedule.ConstantRate
	// Window fails a link during an epoch interval [Start, End).
	Window = schedule.Window
	// Flap cycles a link through an on/off duty cycle.
	Flap = schedule.Flap
	// Intermittent fails a link in a random fraction of epochs.
	Intermittent = schedule.Intermittent
	// Plane selects an evaluation substrate for scenarios (flow or packet).
	Plane = engine.Plane
	// ScenarioConfig parametrizes one dynamic-scenario run.
	ScenarioConfig = scenario.Config
	// ScenarioResult is a scored multi-epoch scenario run.
	ScenarioResult = scenario.Result
	// ScenarioEpoch is one epoch's score within a scenario run.
	ScenarioEpoch = scenario.EpochScore
)

// Evaluation planes for RunScenario: the flow-level simulator (§6) and the
// packet-level cluster emulation (§7/§8). The five named scenarios run
// unmodified on either.
const (
	OnFlowPlane   = engine.Flow
	OnPacketPlane = engine.Packet
)

// Link classes, re-exported.
const (
	HostUp   = topology.HostUp
	HostDown = topology.HostDown
	L1Up     = topology.L1Up
	L1Down   = topology.L1Down
	L2Up     = topology.L2Up
	L2Down   = topology.L2Down
)

// Experiment scales.
const (
	FullScale  = experiments.Full
	QuickScale = experiments.Quick
)

// Virtual-time units for the packet plane.
const (
	Microsecond = des.Microsecond
	Millisecond = des.Millisecond
	Second      = des.Second
)

// DefaultSimTopology is the paper's §6 simulator topology (4160 directed
// links, 2 pods, 20 ToRs per pod).
var DefaultSimTopology = topology.DefaultSimConfig

// TestClusterTopology is the paper's §7 test cluster (one pod, 10 ToRs, 80
// physical links).
var TestClusterTopology = topology.TestClusterConfig

// DatacenterSimTopology is the reference multi-cluster datacenter fabric
// (8 clusters × 3 pods, 34,560 hosts, 142,848 directed links) used by the
// scaling benchmarks; pair it with SimConfig.Incremental.
var DatacenterSimTopology = topology.DatacenterSimConfig

// DatacenterPacketTopology is the packet plane's datacenter fabric (8
// clusters × 4 pods = 32 pods, 256 hosts, 3,584 directed links): every
// packet is emulated individually, so it trades radix for pod count —
// the axis the sharded DES parallelizes over.
var DatacenterPacketTopology = topology.DatacenterPacketConfig

// NewTopology builds a Clos topology.
func NewTopology(cfg TopologyConfig) (*Topology, error) { return topology.New(cfg) }

// NewDatacenterTopology builds a multi-cluster Clos fabric; the result is
// an ordinary *Topology usable everywhere one is accepted.
func NewDatacenterTopology(cfg DatacenterConfig) (*Topology, error) {
	return topology.NewDatacenter(cfg)
}

// NewEmulation builds the packet-level plane. See EmulationConfig for the
// knobs (Tmax, Ct, epoch length, host stack parameters).
func NewEmulation(cfg EmulationConfig) (*Emulation, error) { return cluster.New(cfg) }

// UniformTraffic is the paper's default pattern: destination ToR uniform
// among all other ToRs.
func UniformTraffic() traffic.Pattern { return traffic.Uniform{} }

// HotToRTraffic sends frac of all flows into one sink ToR (Fig. 9).
func HotToRTraffic(sink SwitchID, frac float64) traffic.Pattern {
	return traffic.HotToR{Sink: sink, Frac: frac}
}

// SkewedTraffic sends frac of flows to the given hot ToR set (Fig. 8).
func SkewedTraffic(hot []SwitchID, frac float64) traffic.Pattern {
	return traffic.SkewedToRs{Hot: hot, Frac: frac}
}

// TracerouteBudget returns Theorem 1's bound on per-host traceroutes per
// second that keeps every switch below tmax ICMP messages per second.
func TracerouteBudget(cfg TopologyConfig, tmax float64) float64 {
	return theory.CtBound(cfg, tmax)
}

// SimConfig configures the flow-level plane.
type SimConfig struct {
	// Topology defaults to DefaultSimTopology.
	Topology TopologyConfig
	// Workload defaults to the paper's: uniform pattern, 60 connections
	// per host per epoch, 100 packets per flow.
	Workload Workload
	// NoiseLo, NoiseHi bound good-link drop rates; default (0, 1e-6).
	NoiseLo, NoiseHi float64
	// TracerouteCap limits traced flows per host per epoch (0 = unlimited).
	TracerouteCap int
	// Detect configures Algorithm 1; zero value means the paper's 1%
	// threshold with the observed-path adjuster.
	Detect DetectOptions
	// Seed makes the run reproducible.
	Seed uint64
	// Parallelism is the worker count of the epoch pipeline (simulation,
	// vote tallying and verdict classification); 0 means
	// runtime.GOMAXPROCS(0). Epoch results are bit-identical at every
	// setting — the knob only trades cores for wall-clock.
	Parallelism int
	// Incremental enables datacenter-scale delta epochs: the epoch seed and
	// flow set freeze after the first epoch, and every later epoch
	// re-scores only the flows whose paths touch links whose drop rates
	// changed (schedules, injections and clears all count), carrying every
	// untouched flow's outcome forward. Results are bit-identical to
	// re-scoring the whole frozen workload each epoch; the trade is cache
	// memory (every flow and its path) and epoch-to-epoch statistical
	// independence, which a frozen workload no longer has. Meant for
	// topologies like DatacenterSimTopology where full epochs are
	// millions of flows.
	Incremental bool
}

// Simulation is the flow-level plane: inject failures, run 30-second
// epochs, get rankings, detections and per-flow verdicts scored against
// ground truth. It is a thin wrapper over the plane-agnostic epoch engine
// (internal/engine) pinned to the flow plane; RunScenario reaches the same
// engine on either plane.
type Simulation struct {
	eng engine.Engine
}

// NewSimulation builds a Simulation.
func NewSimulation(cfg SimConfig) (*Simulation, error) {
	topoCfg := cfg.Topology
	if topoCfg == (TopologyConfig{}) {
		topoCfg = DefaultSimTopology
	}
	topo, err := topology.New(topoCfg)
	if err != nil {
		return nil, err
	}
	eng, err := engine.New(engine.Config{
		Plane:         engine.Flow,
		Topo:          topo,
		Workload:      cfg.Workload,
		NoiseLo:       cfg.NoiseLo,
		NoiseHi:       cfg.NoiseHi,
		TracerouteCap: cfg.TracerouteCap,
		Seed:          cfg.Seed,
		Parallelism:   cfg.Parallelism,
		Incremental:   cfg.Incremental,
		Detect:        cfg.Detect,
	})
	if err != nil {
		return nil, err
	}
	return &Simulation{eng: eng}, nil
}

// Topology returns the simulated network.
func (s *Simulation) Topology() *Topology { return s.eng.Topology() }

// InjectFailure sets a directed link's drop rate. The rate must be a
// probability in [0, 1]; the link must exist in the simulated topology.
func (s *Simulation) InjectFailure(l LinkID, rate float64) error {
	return s.eng.InjectFailure(l, rate)
}

// ScheduleFailure attaches an epoch-indexed rate schedule to a link: from
// the next epoch on, the link follows the schedule (re-injected when
// active, restored to its noise rate when not), overriding manual
// injections on the same link. Use the Flap, Window, Intermittent and
// ConstantRate schedules — whose rates are validated here — or any custom
// RateSchedule, whose rates the engine checks as each epoch applies them
// (an out-of-range rate then panics rather than silently corrupting the
// run).
func (s *Simulation) ScheduleFailure(l LinkID, sched RateSchedule) error {
	return s.eng.Schedule(l, sched)
}

// ClearSchedules detaches every rate schedule and restores the scheduled
// links to their noise rates.
func (s *Simulation) ClearSchedules() { s.eng.ClearSchedules() }

// ClearFailure restores a link to its noise rate.
func (s *Simulation) ClearFailure(l LinkID) { s.eng.ClearFailure(l) }

// ClearAllFailures restores every link.
func (s *Simulation) ClearAllFailures() { s.eng.ClearAllFailures() }

// EpochReport is the outcome of one simulated epoch: 007's outputs plus
// ground-truth scores.
type EpochReport struct {
	// Ranking is the vote heat-map, highest first.
	Ranking []LinkVotes
	// Detected is Algorithm 1's problematic link set, in blame order.
	Detected []LinkID
	// Verdicts are 007's per-flow conclusions for every reported flow.
	Verdicts []Verdict
	// FailedLinks are the injected failures active this epoch.
	FailedLinks []LinkID
	// Accuracy is the share of failure-crossing flows blamed on their true
	// culprit (the paper's per-flow accuracy).
	Accuracy float64
	// FlowsScored counts those failure-crossing flows.
	FlowsScored int
	// Detection scores Detected against FailedLinks.
	Detection Detection
	// TotalFlows, FailedFlows and TotalDrops summarize the epoch.
	TotalFlows  int
	FailedFlows int
	TotalDrops  int
}

// RunEpoch simulates one 30-second epoch and analyzes it. The whole cycle
// — simulate, tally, detect, classify — fans out over SimConfig.Parallelism
// workers with deterministic (worker-count-independent) results.
func (s *Simulation) RunEpoch() *EpochReport {
	er := s.eng.RunEpoch()
	score := metrics.ScoreVerdicts(er.Verdicts, er.Truth)
	// The epoch's FailedLinks shares the engine's cached snapshot; hand the
	// public caller an owned copy so mutating the report cannot corrupt
	// later epochs.
	failed := make([]LinkID, len(er.FailedLinks))
	copy(failed, er.FailedLinks)
	return &EpochReport{
		Ranking:     er.Ranking,
		Detected:    er.Detected,
		Verdicts:    er.Verdicts,
		FailedLinks: failed,
		Accuracy:    score.Accuracy(),
		FlowsScored: score.Considered,
		Detection:   metrics.ScoreDetection(er.Detected, er.FailedLinks),
		TotalFlows:  er.TotalFlows,
		FailedFlows: er.FailedFlows,
		TotalDrops:  er.TotalDrops,
	}
}

// LinkName renders a link as "from→to" using a topology's names.
func LinkName(t *Topology, l LinkID) string { return t.LinkName(l) }

// RegisterVIP announces a load-balanced service on an emulation; vip
// addresses come from ServiceVIP.
func RegisterVIP(em *Emulation, vip uint32, backends []HostID) error {
	return em.SLB.RegisterVIP(vip, backends)
}

// ServiceVIP returns the i-th conventional virtual IP.
func ServiceVIP(i int) uint32 { return slb.VIP(i) }

// Experiments returns every registered table/figure runner in paper order.
func Experiments() []Experiment { return experiments.All() }

// RunExperiment runs one experiment by ID ("fig3", "table1", ...).
func RunExperiment(id string, opts ExperimentOptions) (*ExperimentResult, error) {
	r, ok := experiments.Find(id)
	if !ok {
		return nil, fmt.Errorf("vigil: unknown experiment %q (see Experiments())", id)
	}
	return r.Run(opts)
}

// ScenarioInfo identifies a registered dynamic failure scenario.
type ScenarioInfo struct {
	Name  string
	Title string
}

// Scenarios lists the registered dynamic failure scenarios (link flaps,
// intermittent drops, failure waves, congestion bursts, overlap churn).
func Scenarios() []ScenarioInfo {
	specs := scenario.All()
	out := make([]ScenarioInfo, len(specs))
	for i, s := range specs {
		out[i] = ScenarioInfo{Name: s.Name, Title: s.Title}
	}
	return out
}

// RunScenario runs one named dynamic scenario: a scripted multi-epoch
// sequence of time-varying link conditions, each epoch analyzed by 007 and
// scored against that epoch's ground truth. ScenarioConfig.Plane selects
// the substrate — OnFlowPlane (default, the §6 simulator) or OnPacketPlane
// (the §7/§8 cluster emulation) — through one plane-agnostic code path.
// Results are deterministic for a fixed ScenarioConfig.Seed; flow-plane
// runs are additionally bit-identical at every Parallelism.
func RunScenario(name string, cfg ScenarioConfig) (*ScenarioResult, error) {
	spec, ok := scenario.Find(name)
	if !ok {
		return nil, fmt.Errorf("vigil: unknown scenario %q (see Scenarios())", name)
	}
	return scenario.Run(spec, cfg)
}
