package vigil_test

import (
	"reflect"
	"testing"

	"vigil"
)

// The facade must support the full quickstart flow.
func TestSimulationFacade(t *testing.T) {
	sim, err := vigil.NewSimulation(vigil.SimConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	topo := sim.Topology()
	bad := topo.LinksOfClass(vigil.L1Up)[5]
	sim.InjectFailure(bad, 0.01)
	rep := sim.RunEpoch()
	if len(rep.Ranking) == 0 || rep.Ranking[0].Link != bad {
		t.Fatalf("facade pipeline failed to rank the bad link first: %+v", rep.Ranking[:min(3, len(rep.Ranking))])
	}
	if rep.Detection.Recall != 1 {
		t.Fatalf("recall = %v", rep.Detection.Recall)
	}
	if rep.Accuracy < 0.9 {
		t.Fatalf("accuracy = %v", rep.Accuracy)
	}
	if vigil.LinkName(topo, bad) == "" {
		t.Fatal("LinkName empty")
	}
	sim.ClearFailure(bad)
	sim.ClearAllFailures()
	rep2 := sim.RunEpoch()
	if len(rep2.FailedLinks) != 0 {
		t.Fatal("failures not cleared")
	}
}

// The determinism contract of the parallel epoch engine, end to end: a
// seeded epoch's full 007 output — ranking, detections, verdicts and ground
// truth — must be bit-identical at every Parallelism setting.
func TestEpochDeterministicAcrossParallelism(t *testing.T) {
	run := func(parallelism int) *vigil.EpochReport {
		sim, err := vigil.NewSimulation(vigil.SimConfig{
			Topology: vigil.TopologyConfig{
				Pods: 2, ToRsPerPod: 8, T1PerPod: 6, T2: 4, HostsPerToR: 8,
			},
			Seed:        99,
			Parallelism: parallelism,
		})
		if err != nil {
			t.Fatal(err)
		}
		topo := sim.Topology()
		sim.InjectFailure(topo.LinksOfClass(vigil.L1Up)[4], 0.01)
		sim.InjectFailure(topo.LinksOfClass(vigil.L2Down)[2], 0.004)
		return sim.RunEpoch()
	}
	want := run(1)
	if want.TotalDrops == 0 || len(want.Ranking) == 0 {
		t.Fatal("epoch produced no signal to compare")
	}
	for _, parallelism := range []int{2, 8} {
		got := run(parallelism)
		if !reflect.DeepEqual(want.Ranking, got.Ranking) {
			t.Fatalf("Parallelism %d changed the ranking", parallelism)
		}
		if !reflect.DeepEqual(want.Detected, got.Detected) {
			t.Fatalf("Parallelism %d changed detections: %v vs %v", parallelism, want.Detected, got.Detected)
		}
		if !reflect.DeepEqual(want.Verdicts, got.Verdicts) {
			t.Fatalf("Parallelism %d changed verdicts", parallelism)
		}
		if want.TotalDrops != got.TotalDrops {
			t.Fatalf("Parallelism %d changed TotalDrops: %d vs %d", parallelism, want.TotalDrops, got.TotalDrops)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("Parallelism %d changed the epoch report", parallelism)
		}
	}
}

func TestSimulationDefaults(t *testing.T) {
	sim, err := vigil.NewSimulation(vigil.SimConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sim.Topology().Links); got != 4160 {
		t.Fatalf("default topology has %d links, want the paper's 4160", got)
	}
}

func TestEmulationFacade(t *testing.T) {
	topo, err := vigil.NewTopology(vigil.TestClusterTopology)
	if err != nil {
		t.Fatal(err)
	}
	em, err := vigil.NewEmulation(vigil.EmulationConfig{Topo: topo, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	vip := vigil.ServiceVIP(1)
	if err := vigil.RegisterVIP(em, vip, []vigil.HostID{topo.HostAt(0, 5, 0)}); err != nil {
		t.Fatal(err)
	}
	bad := topo.LinksOfClass(vigil.L1Down)[4]
	em.InjectFailure(bad, 0.05)
	em.StartWorkload(vigil.Workload{
		Pattern:        vigil.UniformTraffic(),
		ConnsPerHost:   vigil.IntRange{Lo: 10, Hi: 10},
		PacketsPerFlow: vigil.IntRange{Lo: 80, Hi: 80},
	}, 20*vigil.Second)
	res := em.RunEpoch()
	if res.Tally.Flows() == 0 {
		t.Fatal("no reports in emulation")
	}
	if res.Ranking[0].Link != bad {
		t.Fatalf("emulation top-ranked %v, want %v", res.Ranking[0].Link, bad)
	}
}

func TestTrafficPatternConstructors(t *testing.T) {
	topo, err := vigil.NewTopology(vigil.TestClusterTopology)
	if err != nil {
		t.Fatal(err)
	}
	if vigil.UniformTraffic() == nil {
		t.Fatal("nil uniform pattern")
	}
	if vigil.HotToRTraffic(topo.ToR(0, 0), 0.5) == nil {
		t.Fatal("nil hot pattern")
	}
	if vigil.SkewedTraffic([]vigil.SwitchID{topo.ToR(0, 1)}, 0.8) == nil {
		t.Fatal("nil skewed pattern")
	}
}

func TestTracerouteBudgetFacade(t *testing.T) {
	if got := vigil.TracerouteBudget(vigil.DefaultSimTopology, 100); got != 3.25 {
		t.Fatalf("TracerouteBudget = %v, want 3.25", got)
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	if _, err := vigil.RunExperiment("not-an-experiment", vigil.ExperimentOptions{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if len(vigil.Experiments()) < 20 {
		t.Fatalf("only %d experiments exposed", len(vigil.Experiments()))
	}
}
