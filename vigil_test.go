package vigil_test

import (
	"math"
	"reflect"
	"testing"

	"vigil"
)

// The facade must support the full quickstart flow.
func TestSimulationFacade(t *testing.T) {
	sim, err := vigil.NewSimulation(vigil.SimConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	topo := sim.Topology()
	bad := topo.LinksOfClass(vigil.L1Up)[5]
	sim.InjectFailure(bad, 0.01)
	rep := sim.RunEpoch()
	if len(rep.Ranking) == 0 || rep.Ranking[0].Link != bad {
		t.Fatalf("facade pipeline failed to rank the bad link first: %+v", rep.Ranking[:min(3, len(rep.Ranking))])
	}
	if rep.Detection.Recall != 1 {
		t.Fatalf("recall = %v", rep.Detection.Recall)
	}
	if rep.Accuracy < 0.9 {
		t.Fatalf("accuracy = %v", rep.Accuracy)
	}
	if vigil.LinkName(topo, bad) == "" {
		t.Fatal("LinkName empty")
	}
	sim.ClearFailure(bad)
	sim.ClearAllFailures()
	rep2 := sim.RunEpoch()
	if len(rep2.FailedLinks) != 0 {
		t.Fatal("failures not cleared")
	}
}

// The determinism contract of the parallel epoch engine, end to end: a
// seeded epoch's full 007 output — ranking, detections, verdicts and ground
// truth — must be bit-identical at every Parallelism setting.
func TestEpochDeterministicAcrossParallelism(t *testing.T) {
	run := func(parallelism int) *vigil.EpochReport {
		sim, err := vigil.NewSimulation(vigil.SimConfig{
			Topology: vigil.TopologyConfig{
				Pods: 2, ToRsPerPod: 8, T1PerPod: 6, T2: 4, HostsPerToR: 8,
			},
			Seed:        99,
			Parallelism: parallelism,
		})
		if err != nil {
			t.Fatal(err)
		}
		topo := sim.Topology()
		sim.InjectFailure(topo.LinksOfClass(vigil.L1Up)[4], 0.01)
		sim.InjectFailure(topo.LinksOfClass(vigil.L2Down)[2], 0.004)
		return sim.RunEpoch()
	}
	want := run(1)
	if want.TotalDrops == 0 || len(want.Ranking) == 0 {
		t.Fatal("epoch produced no signal to compare")
	}
	for _, parallelism := range []int{2, 8} {
		got := run(parallelism)
		if !reflect.DeepEqual(want.Ranking, got.Ranking) {
			t.Fatalf("Parallelism %d changed the ranking", parallelism)
		}
		if !reflect.DeepEqual(want.Detected, got.Detected) {
			t.Fatalf("Parallelism %d changed detections: %v vs %v", parallelism, want.Detected, got.Detected)
		}
		if !reflect.DeepEqual(want.Verdicts, got.Verdicts) {
			t.Fatalf("Parallelism %d changed verdicts", parallelism)
		}
		if want.TotalDrops != got.TotalDrops {
			t.Fatalf("Parallelism %d changed TotalDrops: %d vs %d", parallelism, want.TotalDrops, got.TotalDrops)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("Parallelism %d changed the epoch report", parallelism)
		}
	}
}

func TestSimulationDefaults(t *testing.T) {
	sim, err := vigil.NewSimulation(vigil.SimConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sim.Topology().Links); got != 4160 {
		t.Fatalf("default topology has %d links, want the paper's 4160", got)
	}
}

func TestEmulationFacade(t *testing.T) {
	topo, err := vigil.NewTopology(vigil.TestClusterTopology)
	if err != nil {
		t.Fatal(err)
	}
	em, err := vigil.NewEmulation(vigil.EmulationConfig{Topo: topo, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	vip := vigil.ServiceVIP(1)
	if err := vigil.RegisterVIP(em, vip, []vigil.HostID{topo.HostAt(0, 5, 0)}); err != nil {
		t.Fatal(err)
	}
	bad := topo.LinksOfClass(vigil.L1Down)[4]
	em.InjectFailure(bad, 0.05)
	em.StartWorkload(vigil.Workload{
		Pattern:        vigil.UniformTraffic(),
		ConnsPerHost:   vigil.IntRange{Lo: 10, Hi: 10},
		PacketsPerFlow: vigil.IntRange{Lo: 80, Hi: 80},
	}, 20*vigil.Second)
	res := em.RunEpoch()
	if res.Tally.Flows() == 0 {
		t.Fatal("no reports in emulation")
	}
	if res.Ranking[0].Link != bad {
		t.Fatalf("emulation top-ranked %v, want %v", res.Ranking[0].Link, bad)
	}
}

func TestTrafficPatternConstructors(t *testing.T) {
	topo, err := vigil.NewTopology(vigil.TestClusterTopology)
	if err != nil {
		t.Fatal(err)
	}
	if vigil.UniformTraffic() == nil {
		t.Fatal("nil uniform pattern")
	}
	if vigil.HotToRTraffic(topo.ToR(0, 0), 0.5) == nil {
		t.Fatal("nil hot pattern")
	}
	if vigil.SkewedTraffic([]vigil.SwitchID{topo.ToR(0, 1)}, 0.8) == nil {
		t.Fatal("nil skewed pattern")
	}
}

func TestTracerouteBudgetFacade(t *testing.T) {
	if got := vigil.TracerouteBudget(vigil.DefaultSimTopology, 100); got != 3.25 {
		t.Fatalf("TracerouteBudget = %v, want 3.25", got)
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	if _, err := vigil.RunExperiment("not-an-experiment", vigil.ExperimentOptions{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if len(vigil.Experiments()) < 20 {
		t.Fatalf("only %d experiments exposed", len(vigil.Experiments()))
	}
}

// Error paths of the public API: every invalid input must come back as an
// error, not a panic or a silently corrupted simulation.
func TestPublicAPIErrorPaths(t *testing.T) {
	t.Run("NewSimulation", func(t *testing.T) {
		cases := []struct {
			name string
			topo vigil.TopologyConfig
		}{
			{"negative pods", vigil.TopologyConfig{Pods: -1, ToRsPerPod: 4, T1PerPod: 3, T2: 2, HostsPerToR: 4}},
			{"zero tors", vigil.TopologyConfig{Pods: 2, ToRsPerPod: 0, T1PerPod: 3, T2: 2, HostsPerToR: 4}},
			{"tors out of range", vigil.TopologyConfig{Pods: 2, ToRsPerPod: 300, T1PerPod: 3, T2: 2, HostsPerToR: 4}},
			{"multi-pod without T2", vigil.TopologyConfig{Pods: 2, ToRsPerPod: 4, T1PerPod: 3, T2: 0, HostsPerToR: 4}},
			{"hosts out of range", vigil.TopologyConfig{Pods: 2, ToRsPerPod: 4, T1PerPod: 3, T2: 2, HostsPerToR: 255}},
		}
		for _, tc := range cases {
			t.Run(tc.name, func(t *testing.T) {
				if _, err := vigil.NewSimulation(vigil.SimConfig{Topology: tc.topo}); err == nil {
					t.Fatalf("invalid topology %+v accepted", tc.topo)
				}
			})
		}
	})

	t.Run("InjectFailure", func(t *testing.T) {
		sim, err := vigil.NewSimulation(vigil.SimConfig{
			Topology: vigil.TopologyConfig{Pods: 1, ToRsPerPod: 2, T1PerPod: 2, T2: 0, HostsPerToR: 2},
			Seed:     1,
		})
		if err != nil {
			t.Fatal(err)
		}
		nlinks := len(sim.Topology().Links)
		good := sim.Topology().LinksOfClass(vigil.L1Up)[0]
		cases := []struct {
			name    string
			link    vigil.LinkID
			rate    float64
			wantErr bool
		}{
			{"valid", good, 0.05, false},
			{"rate zero", good, 0, false},
			{"rate one", good, 1, false},
			{"negative rate", good, -0.1, true},
			{"rate above one", good, 1.5, true},
			{"NaN rate", good, math.NaN(), true},
			{"negative link", -1, 0.05, true},
			{"link out of range", vigil.LinkID(nlinks), 0.05, true},
		}
		for _, tc := range cases {
			t.Run(tc.name, func(t *testing.T) {
				err := sim.InjectFailure(tc.link, tc.rate)
				if (err != nil) != tc.wantErr {
					t.Fatalf("InjectFailure(%d, %v) error = %v, wantErr %v", tc.link, tc.rate, err, tc.wantErr)
				}
			})
		}
		sim.ClearAllFailures()
	})

	t.Run("ScheduleFailure", func(t *testing.T) {
		sim, err := vigil.NewSimulation(vigil.SimConfig{
			Topology: vigil.TopologyConfig{Pods: 1, ToRsPerPod: 2, T1PerPod: 2, T2: 0, HostsPerToR: 2},
			Seed:     1,
		})
		if err != nil {
			t.Fatal(err)
		}
		good := sim.Topology().LinksOfClass(vigil.L1Up)[0]
		if err := sim.ScheduleFailure(-1, vigil.ConstantRate{Rate: 0.1}); err == nil {
			t.Fatal("unknown link accepted")
		}
		if err := sim.ScheduleFailure(good, nil); err == nil {
			t.Fatal("nil schedule accepted")
		}
		for _, sched := range []vigil.RateSchedule{
			vigil.ConstantRate{Rate: 1.5},
			vigil.Window{Rate: -0.1, Start: 0, End: 2},
			vigil.Flap{Rate: math.NaN(), Period: 2, On: 1},
			vigil.Intermittent{Rate: 2, Prob: 0.5},
		} {
			if err := sim.ScheduleFailure(good, sched); err == nil {
				t.Fatalf("out-of-range rate accepted in %T", sched)
			}
		}
		if err := sim.ScheduleFailure(good, vigil.Flap{Rate: 0.1, Period: 2, On: 1}); err != nil {
			t.Fatal(err)
		}
		sim.ClearSchedules()
	})

	t.Run("RunIDs", func(t *testing.T) {
		cases := []struct {
			name string
			run  func() error
		}{
			{"unknown experiment", func() error {
				_, err := vigil.RunExperiment("fig99", vigil.ExperimentOptions{})
				return err
			}},
			{"empty experiment id", func() error {
				_, err := vigil.RunExperiment("", vigil.ExperimentOptions{})
				return err
			}},
			{"unknown scenario", func() error {
				_, err := vigil.RunScenario("not-a-scenario", vigil.ScenarioConfig{Seed: 1})
				return err
			}},
			{"empty scenario name", func() error {
				_, err := vigil.RunScenario("", vigil.ScenarioConfig{Seed: 1})
				return err
			}},
		}
		for _, tc := range cases {
			t.Run(tc.name, func(t *testing.T) {
				if tc.run() == nil {
					t.Fatal("invalid ID accepted")
				}
			})
		}
	})
}

// The scenario facade: named scenarios list, run, score, and follow the
// determinism contract end to end through the public API.
func TestScenarioFacade(t *testing.T) {
	infos := vigil.Scenarios()
	if len(infos) < 5 {
		t.Fatalf("only %d scenarios exposed", len(infos))
	}
	for _, info := range infos {
		if info.Name == "" || info.Title == "" {
			t.Fatalf("unnamed scenario in listing: %+v", info)
		}
	}
	run := func(p int) *vigil.ScenarioResult {
		res, err := vigil.RunScenario("link-flap", vigil.ScenarioConfig{Seed: 11, Parallelism: p})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := run(1)
	if want.ActiveEpochs == 0 || len(want.Epochs) == 0 {
		t.Fatalf("scenario run produced no scored epochs: %+v", want)
	}
	if want.Recall < 0.9 {
		t.Fatalf("link-flap recall = %v, want >= 0.9", want.Recall)
	}
	if got := run(4); !reflect.DeepEqual(want, got) {
		t.Fatal("Parallelism changed the scenario result through the facade")
	}
}

// The plane-agnostic facade: the same named scenario runs on the packet
// plane through RunScenario with OnPacketPlane.
func TestRunScenarioOnPacketPlane(t *testing.T) {
	if testing.Short() {
		t.Skip("packet-plane DES run; skipped in -short mode")
	}
	res, err := vigil.RunScenario("link-flap", vigil.ScenarioConfig{
		Seed:   5,
		Epochs: 4,
		Plane:  vigil.OnPacketPlane,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plane != vigil.OnPacketPlane {
		t.Fatalf("result plane = %q", res.Plane)
	}
	if len(res.Epochs) != 4 || res.ActiveEpochs == 0 {
		t.Fatalf("packet scenario produced no scored activity: %+v", res)
	}
	if _, err := vigil.RunScenario("link-flap", vigil.ScenarioConfig{Plane: "quantum"}); err == nil {
		t.Fatal("unknown plane accepted")
	}
}

// Emulation.ScheduleFailure: epoch-settled dynamics on the packet plane
// through the public facade, with the same validation as the simulator.
func TestEmulationScheduleFailureFacade(t *testing.T) {
	topo, err := vigil.NewTopology(vigil.TestClusterTopology)
	if err != nil {
		t.Fatal(err)
	}
	em, err := vigil.NewEmulation(vigil.EmulationConfig{Topo: topo, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	bad := topo.LinksOfClass(vigil.L1Down)[2]
	if err := em.ScheduleFailure(-1, vigil.ConstantRate{Rate: 0.1}); err == nil {
		t.Fatal("unknown link accepted")
	}
	if err := em.ScheduleFailure(bad, nil); err == nil {
		t.Fatal("nil schedule accepted")
	}
	if err := em.ScheduleFailure(bad, vigil.Flap{Rate: 1.5, Period: 2, On: 1}); err == nil {
		t.Fatal("out-of-range rate accepted")
	}
	if err := em.ScheduleFailure(bad, vigil.Window{Rate: 0.08, Start: 1, End: 2}); err != nil {
		t.Fatal(err)
	}
	workload := vigil.Workload{
		Pattern:        vigil.UniformTraffic(),
		ConnsPerHost:   vigil.IntRange{Lo: 4, Hi: 4},
		PacketsPerFlow: vigil.IntRange{Lo: 60, Hi: 60},
	}
	for e := 0; e < 3; e++ {
		em.StartWorkload(workload, 10*vigil.Second)
		res := em.RunEpoch()
		fr := em.LastEpoch()
		if e == 1 {
			if len(fr.FailedLinks) != 1 || fr.FailedLinks[0] != bad {
				t.Fatalf("epoch %d: FailedLinks = %v, want [%v]", e, fr.FailedLinks, bad)
			}
			if len(res.Ranking) == 0 || res.Ranking[0].Link != bad {
				t.Fatalf("epoch %d: scheduled link not localized", e)
			}
		} else if len(fr.FailedLinks) != 0 {
			t.Fatalf("epoch %d: FailedLinks = %v, want none", e, fr.FailedLinks)
		}
	}
	// Manual injection validation through the facade.
	if err := em.InjectFailure(bad, 1.5); err == nil {
		t.Fatal("out-of-range manual rate accepted")
	}
}

// Custom dynamics through the facade: a scheduled link must raise drops
// only during its scripted epochs.
func TestScheduleFailureFacade(t *testing.T) {
	sim, err := vigil.NewSimulation(vigil.SimConfig{
		Topology: vigil.TopologyConfig{Pods: 2, ToRsPerPod: 4, T1PerPod: 3, T2: 4, HostsPerToR: 4},
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	bad := sim.Topology().LinksOfClass(vigil.L1Up)[1]
	if err := sim.ScheduleFailure(bad, vigil.Window{Rate: 0.05, Start: 1, End: 2}); err != nil {
		t.Fatal(err)
	}
	quiet := sim.RunEpoch()
	if len(quiet.FailedLinks) != 0 {
		t.Fatalf("epoch 0 should be quiet, FailedLinks = %v", quiet.FailedLinks)
	}
	active := sim.RunEpoch()
	if len(active.FailedLinks) != 1 || active.FailedLinks[0] != bad {
		t.Fatalf("epoch 1 FailedLinks = %v, want [%v]", active.FailedLinks, bad)
	}
	if active.Detection.Recall != 1 {
		t.Fatalf("active epoch recall = %v", active.Detection.Recall)
	}
}
