// vigil-theory prints the paper's analytical bounds (Theorems 1 and 2) for
// a given Clos topology.
package main

import (
	"flag"
	"fmt"
	"os"

	"vigil"
	"vigil/internal/theory"
)

func main() {
	pods := flag.Int("pods", vigil.DefaultSimTopology.Pods, "pods")
	tors := flag.Int("tors", vigil.DefaultSimTopology.ToRsPerPod, "ToRs per pod (n0)")
	t1 := flag.Int("t1", vigil.DefaultSimTopology.T1PerPod, "tier-1 per pod (n1)")
	t2 := flag.Int("t2", vigil.DefaultSimTopology.T2, "tier-2 switches (n2)")
	hosts := flag.Int("hosts", vigil.DefaultSimTopology.HostsPerToR, "hosts per ToR (H)")
	tmax := flag.Float64("tmax", 100, "switch ICMP cap (messages/second)")
	pb := flag.Float64("pb", 0.0005, "bad-link drop rate for the noise bound")
	cl := flag.Int("cl", 10, "lower bound on packets per connection")
	cu := flag.Int("cu", 100, "upper bound on packets per connection")
	flag.Parse()

	cfg := vigil.TopologyConfig{
		Pods: *pods, ToRsPerPod: *tors, T1PerPod: *t1, T2: *t2, HostsPerToR: *hosts,
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "vigil-theory:", err)
		os.Exit(1)
	}
	fmt.Printf("topology: npod=%d n0=%d n1=%d n2=%d H=%d (%d directed links, %d hosts)\n\n",
		cfg.Pods, cfg.ToRsPerPod, cfg.T1PerPod, cfg.T2, cfg.HostsPerToR,
		cfg.DirectedLinks(), cfg.Hosts())

	fmt.Printf("Theorem 1: Ct <= %.4f traceroutes/second/host (Tmax=%.0f)\n\n",
		theory.CtBound(cfg, *tmax), *tmax)

	fmt.Printf("Theorem 2: detectable failures k < %.2f\n", theory.MaxBadLinks(cfg))
	fmt.Printf("%4s  %10s  %14s  %s\n", "k", "alpha", "max noise pg", "conditions")
	for _, k := range []int{1, 2, 5, 10, 14} {
		ok, viol := theory.Conditions(cfg, k)
		status := "hold"
		if !ok {
			status = fmt.Sprintf("violated: %v", viol)
		}
		fmt.Printf("%4d  %10.4f  %14.3e  %s\n",
			k, theory.Alpha(cfg, k), theory.PgBound(cfg, k, *pb, *cl, *cu), status)
	}
}
