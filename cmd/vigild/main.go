// vigild is the always-on ingest daemon: it wraps the plane-agnostic
// epoch engine behind the streaming ingest service (internal/ingest),
// settling epochs on a watermark while surviving lossy, late, duplicated
// and crashing agents, and exposes its counters on a Prometheus-style
// /metrics endpoint.
//
// With the fault flags at zero the settled epochs are bit-identical to the
// batch engine's; the fault flags inject seeded, reproducible chaos on the
// agent→collector path to exercise (and observe, via /metrics) the
// robustness machinery.
//
// Usage:
//
//	vigild -epochs 50                        # 50 epochs, flow plane, then exit
//	vigild -epochs 0 -interval 500ms         # run until SIGINT
//	vigild -plane packet -epochs 20
//	vigild -drop 0.05 -duplicate 0.02 -retries 1
//	vigild -listen 127.0.0.1:9007            # serve /metrics while running
//
// With -collector-listen, vigild instead serves the networked ingest
// transport (internal/transport): remote vigil-agents sessions stream
// reports and cycle tokens over resumable TCP sessions, epochs settle on
// the same watermark machinery, and -checkpoint makes the settle state
// durable — a restarted vigild resumes mid-cycle from the checkpoint
// without re-settling or dropping epochs:
//
//	vigild -collector-listen 127.0.0.1:9009 -checkpoint /var/run/vigild.ckpt \
//	       -sessions 1 -listen 127.0.0.1:9007
//
// SIGINT or SIGTERM stops the epoch loop; every started epoch still
// settles and the final counters are printed before exit. A second signal
// force-kills.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"vigil/internal/engine"
	"vigil/internal/ingest"
	"vigil/internal/metrics"
	"vigil/internal/prof"
	"vigil/internal/runutil"
	"vigil/internal/scenario"
	"vigil/internal/stats"
	"vigil/internal/topology"
)

// profiler is shared with fail so error exits still flush a running CPU
// profile.
var profiler *prof.Profiler

func fail(err error) {
	if profiler != nil {
		profiler.Stop()
	}
	fmt.Fprintln(os.Stderr, "vigild:", err)
	os.Exit(1)
}

// observeEpoch feeds one settled epoch into the exporter: the vote
// ranking resolved to link names (with Algorithm 1's detected set
// flagged), and the detection scored against the epoch's injected-failure
// ground truth as the scenario's conformance point.
func observeEpoch(exp *metrics.EpochExporter, topo *topology.Topology, res *engine.EpochResult, scenarioName string) {
	detected := make(map[topology.LinkID]bool, len(res.Detected))
	for _, l := range res.Detected {
		detected[l] = true
	}
	ranked := make([]metrics.RankedLink, 0, len(res.Ranking))
	for _, lv := range res.Ranking {
		ranked = append(ranked, metrics.RankedLink{
			Link:     topo.LinkName(lv.Link),
			Votes:    lv.Votes,
			Detected: detected[lv.Link],
		})
	}
	exp.ObserveEpoch(int64(res.Epoch), ranked)
	exp.ObserveConformance(scenarioName, metrics.ScoreDetection(res.Detected, res.FailedLinks))
}

// collectorMode bundles the networked-collector flags.
type collectorMode struct {
	addr, checkpoint, scenario, metricsAddr string
	sessions, grace, retries, topK          int
	quiet                                   bool
	topo                                    *topology.Topology
}

// runCollector serves the networked ingest transport: remote agent
// sessions drive the epochs; vigild settles, checkpoints, and exports.
func runCollector(m collectorMode) {
	ln, err := net.Listen("tcp", m.addr)
	if err != nil {
		fail(err)
	}
	exporter := metrics.NewEpochExporter(m.topK)
	tctr := &metrics.TransportCounters{}
	col, err := ingest.ServeCollector(ingest.CollectorConfig{
		Listener:       ln,
		Sessions:       m.sessions,
		Grace:          m.grace,
		MaxRetries:     m.retries,
		CheckpointPath: m.checkpoint,
		Transport:      tctr,
		Sink: func(res *engine.EpochResult) {
			observeEpoch(exporter, m.topo, res, m.scenario)
			if m.quiet {
				return
			}
			fmt.Printf("epoch %4d settled: %4d reports, %d detected, %d verdicts\n",
				res.Epoch, len(res.Reports), len(res.Detected), len(res.Verdicts))
		},
	})
	if err != nil {
		fail(err)
	}
	fmt.Printf("ingest collector on %s (%d sessions", col.Addr(), m.sessions)
	if m.checkpoint != "" {
		fmt.Printf(", checkpoint %s", m.checkpoint)
	}
	fmt.Println(")")

	var metricsSrv *http.Server
	if m.metricsAddr != "" {
		mln, err := net.Listen("tcp", m.metricsAddr)
		if err != nil {
			fail(err)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			col.Counters().WritePrometheus(w)
			tctr.WritePrometheus(w)
			exporter.WritePrometheus(w)
		})
		metricsSrv = &http.Server{Handler: mux}
		go metricsSrv.Serve(mln)
		fmt.Printf("metrics on http://%s/metrics\n", mln.Addr())
	}

	ctx, stopSignals := runutil.SignalContext(context.Background())
	err = col.Wait(ctx)
	stopSignals()
	col.Close()
	if err == context.Canceled {
		fmt.Fprintln(os.Stderr, "vigild: interrupted; collector state is on the checkpoint")
	}
	if metricsSrv != nil {
		shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		metricsSrv.Shutdown(shutCtx)
		cancel()
	}
	c := col.Counters()
	fmt.Printf("\nsettled %d epochs: received %d, accepted %d, duplicates %d, lost %d, retries %d, recovered %d\n",
		c.SettledEpochs.Load(), c.Received.Load(), c.Accepted.Load(),
		c.Duplicates.Load(), c.Lost.Load(), c.Retries.Load(), c.Recovered.Load())
	fmt.Printf("transport: %d frames in, %d dropped stale, %d acks, %d checkpoints, %d accept retries\n",
		tctr.FramesReceived.Load(), tctr.FramesDropped.Load(), tctr.AcksSent.Load(),
		tctr.Checkpoints.Load(), tctr.AcceptRetries.Load())
	if err := profiler.Stop(); err != nil {
		fail(err)
	}
}

func main() {
	plane := flag.String("plane", "flow", "evaluation plane: flow or packet")
	epochs := flag.Int("epochs", 50, "epochs to run (0 = until SIGINT)")
	seed := flag.Uint64("seed", 7, "engine seed")
	failures := flag.Int("failures", 2, "failed links to inject")
	rate := flag.Float64("rate", 0.05, "failed-link drop rate")
	interval := flag.Duration("interval", 0, "wall-clock pacing between epochs (0 = back to back)")
	grace := flag.Int("grace", 0, "watermark grace window in epochs (0 = default 2)")
	retries := flag.Int("retries", 0, "max gap re-request rounds per epoch")
	listen := flag.String("listen", "", "address for the /metrics endpoint (empty = off)")
	quiet := flag.Bool("quiet", false, "suppress per-epoch lines")
	scenarioLabel := flag.String("scenario", "static", "scenario label on the conformance gauges")
	topK := flag.Int("top-links", 10, "ranked links exported per settled epoch")

	collectorListen := flag.String("collector-listen", "", "serve the networked ingest transport on this address (empty = in-process engine)")
	checkpoint := flag.String("checkpoint", "", "checkpoint file for collector crash recovery (collector mode)")
	sessions := flag.Int("sessions", 1, "agent sessions expected (collector mode)")

	faultSeed := flag.Uint64("fault-seed", 1, "fault layer seed")
	drop := flag.Float64("drop", 0, "report drop probability")
	duplicate := flag.Float64("duplicate", 0, "report duplicate probability")
	delay := flag.Float64("delay", 0, "report delay probability")
	delayMax := flag.Int("delay-max", 2, "max delay in epochs")
	burst := flag.Float64("burst", 0, "per-agent-epoch burst-loss probability")
	crash := flag.Float64("crash", 0, "per-agent-epoch crash probability")

	profiler = prof.Register()
	flag.Parse()

	if err := profiler.Start(); err != nil {
		fail(err)
	}

	pl := engine.Plane(*plane)
	if !pl.Valid() {
		fail(fmt.Errorf("unknown plane %q (want flow or packet)", *plane))
	}
	topoCfg := scenario.QuickTopo
	if pl == engine.Packet {
		topoCfg = scenario.PacketQuickTopo
	}
	topo, err := topology.New(topoCfg)
	if err != nil {
		fail(err)
	}

	if *collectorListen != "" {
		runCollector(collectorMode{
			addr: *collectorListen, checkpoint: *checkpoint, sessions: *sessions,
			grace: *grace, retries: *retries, topK: *topK, quiet: *quiet,
			scenario: *scenarioLabel, metricsAddr: *listen, topo: topo,
		})
		return
	}

	eng, err := engine.New(engine.Config{Plane: pl, Topo: topo, Seed: *seed})
	if err != nil {
		fail(err)
	}
	rng := stats.NewRNG(*seed + 3)
	pool := topo.LinksOfClass(topology.L1Down)
	for i := 0; i < *failures; i++ {
		l := pool[rng.Intn(len(pool))]
		if err := eng.InjectFailure(l, *rate); err != nil {
			fail(err)
		}
		fmt.Printf("injected %.1f%% loss on %s\n", *rate*100, topo.LinkName(l))
	}

	exporter := metrics.NewEpochExporter(*topK)

	svc, err := ingest.New(ingest.Config{
		Engine:     eng,
		Grace:      *grace,
		MaxRetries: *retries,
		Interval:   *interval,
		Faults: ingest.FaultConfig{
			Seed:      *faultSeed,
			Drop:      *drop,
			Duplicate: *duplicate,
			Delay:     *delay,
			DelayMax:  *delayMax,
			Burst:     *burst,
			Crash:     *crash,
		},
		Sink: func(res *engine.EpochResult) {
			observeEpoch(exporter, topo, res, *scenarioLabel)
			if *quiet {
				return
			}
			fmt.Printf("epoch %4d settled: %4d reports, %d detected, %d verdicts\n",
				res.Epoch, len(res.Reports), len(res.Detected), len(res.Verdicts))
		},
	})
	if err != nil {
		fail(err)
	}

	var metricsSrv *http.Server
	if *listen != "" {
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			fail(err)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			svc.Counters().WritePrometheus(w)
			exporter.WritePrometheus(w)
		})
		metricsSrv = &http.Server{Handler: mux}
		go metricsSrv.Serve(ln)
		fmt.Printf("metrics on http://%s/metrics\n", ln.Addr())
	}

	ctx, stopSignals := runutil.SignalContext(context.Background())
	err = svc.Run(ctx, *epochs)
	stopSignals()
	if err == context.Canceled {
		fmt.Fprintln(os.Stderr, "vigild: interrupted; pipeline drained")
	} else if err != nil {
		fail(err)
	}
	if metricsSrv != nil {
		shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		metricsSrv.Shutdown(shutCtx)
		cancel()
	}

	c := svc.Counters()
	fmt.Printf("\nsettled %d epochs: received %d, accepted %d, duplicates %d, late %d (+%d past grace), lost %d, retries %d, recovered %d\n",
		c.SettledEpochs.Load(), c.Received.Load(), c.Accepted.Load(),
		c.Duplicates.Load(), c.Late.Load(), c.LateDropped.Load(),
		c.Lost.Load(), c.Retries.Load(), c.Recovered.Load())
	if err := profiler.Stop(); err != nil {
		fail(err)
	}
}
