// vigil-lab regenerates the paper's tables and figures.
//
// Usage:
//
//	vigil-lab -run all            # every experiment, full scale
//	vigil-lab -run fig3,fig10     # a subset
//	vigil-lab -run fig13 -quick   # reduced scale (benchmark size)
//	vigil-lab -run all -csv out/  # also write CSV per table
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"vigil"
)

func main() {
	runIDs := flag.String("run", "all", "comma-separated experiment IDs, or 'all'")
	quick := flag.Bool("quick", false, "reduced scale (smaller topology, fewer seeds)")
	seeds := flag.Int("seeds", 0, "repetitions per data point (0 = scale default)")
	seed := flag.Uint64("seed", 7, "base random seed")
	csvDir := flag.String("csv", "", "directory to write per-table CSV files")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	parallel := flag.Int("par", 0, "seed-sweep worker pool size (0 = all cores); results are identical at any setting")
	flag.Parse()

	if *list {
		for _, e := range vigil.Experiments() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		return
	}

	opts := vigil.ExperimentOptions{Scale: vigil.FullScale, Seeds: *seeds, Seed: *seed, Parallelism: *parallel}
	if *quick {
		opts.Scale = vigil.QuickScale
	}

	var ids []string
	if *runIDs == "all" {
		for _, e := range vigil.Experiments() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*runIDs, ",")
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatal(err)
		}
	}

	for _, id := range ids {
		id = strings.TrimSpace(id)
		res, err := vigil.RunExperiment(id, opts)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", id, err))
		}
		fmt.Printf("== %s — %s ==\n\n", res.ID, res.Title)
		for i, tab := range res.Tables {
			if err := tab.RenderASCII(os.Stdout); err != nil {
				fatal(err)
			}
			if *csvDir != "" {
				name := filepath.Join(*csvDir, fmt.Sprintf("%s_%d.csv", res.ID, i))
				f, err := os.Create(name)
				if err != nil {
					fatal(err)
				}
				if err := tab.WriteCSV(f); err != nil {
					fatal(err)
				}
				f.Close()
			}
		}
		for _, n := range res.Notes {
			fmt.Printf("  note: %s\n", n)
		}
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vigil-lab:", err)
	os.Exit(1)
}
