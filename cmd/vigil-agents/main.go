// vigil-agents runs the deployment shape of the paper's Figure 2 on one
// machine: emulated hosts run 007 agents over the packet fabric and ship
// their vote reports to a centralized analysis collector over real
// loopback TCP; the collector tallies each epoch and prints the verdicts.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"

	"vigil"
	"vigil/internal/cluster"
	"vigil/internal/prof"
	"vigil/internal/runutil"
	"vigil/internal/stats"
	"vigil/internal/topology"
	"vigil/internal/vote"
)

// profiler is shared with fail so error exits still flush a running CPU
// profile.
var profiler *prof.Profiler

func main() {
	epochs := flag.Int("epochs", 3, "epochs to run")
	failures := flag.Int("failures", 2, "failed links to inject")
	rate := flag.Float64("rate", 0.03, "failed-link drop rate")
	conns := flag.Int("conns", 5, "connections per host per epoch")
	seed := flag.Uint64("seed", 1, "random seed")
	listen := flag.String("listen", "127.0.0.1:0", "collector listen address")
	profiler = prof.Register()
	flag.Parse()

	if err := profiler.Start(); err != nil {
		fail(err)
	}
	defer func() {
		if err := profiler.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "vigil-agents:", err)
		}
	}()

	em, err := vigil.NewEmulation(vigil.EmulationConfig{
		Topo: must(vigil.NewTopology(vigil.TestClusterTopology)), Seed: *seed,
	})
	if err != nil {
		fail(err)
	}
	topo := em.Topo

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fail(err)
	}
	srv := cluster.ServeCollector(em.Agent, ln)
	defer srv.Close()
	fmt.Printf("analysis collector listening on %s\n", srv.Addr())

	rep, err := cluster.DialReporter(srv.Addr())
	if err != nil {
		fail(err)
	}
	defer rep.Close()
	em.Reporter = func(r vote.Report) {
		if err := rep.Report(r); err != nil {
			fmt.Fprintln(os.Stderr, "report:", err)
		}
	}

	rng := stats.NewRNG(*seed + 3)
	var bad []vigil.LinkID
	pool := topo.LinksOfClass(topology.L1Down)
	for i := 0; i < *failures; i++ {
		l := pool[rng.Intn(len(pool))]
		if err := em.InjectFailure(l, *rate); err != nil {
			fail(err)
		}
		bad = append(bad, l)
		fmt.Printf("injected %.1f%% loss on %s\n", *rate*100, topo.LinkName(l))
	}

	// First Ctrl-C finishes the running epoch, then the defers flush the
	// profile and close the collector cleanly; a second one force-kills.
	ctx, stopSignals := runutil.SignalContext(context.Background())
	defer stopSignals()

	for e := 0; e < *epochs && ctx.Err() == nil; e++ {
		em.StartWorkload(vigil.Workload{
			Pattern:        vigil.UniformTraffic(),
			ConnsPerHost:   vigil.IntRange{Lo: *conns, Hi: *conns},
			PacketsPerFlow: vigil.IntRange{Lo: 50, Hi: 100},
		}, 20*vigil.Second)
		res := em.RunEpoch()
		fmt.Printf("\nepoch %d: %d reports over TCP (%d total received)\n",
			e, res.Tally.Flows(), srv.Received)
		for i, lv := range res.Ranking {
			if i >= 5 {
				break
			}
			marker := ""
			for _, b := range bad {
				if b == lv.Link {
					marker = "  <-- injected"
				}
			}
			fmt.Printf("  %6.2f  %s%s\n", lv.Votes, topo.LinkName(lv.Link), marker)
		}
		fmt.Printf("  detected: %d link(s)\n", len(res.Detected))
		for _, l := range res.Detected {
			fmt.Printf("    %s\n", topo.LinkName(l))
		}
	}
}

func must(t *vigil.Topology, err error) *vigil.Topology {
	if err != nil {
		fail(err)
	}
	return t
}

func fail(err error) {
	if profiler != nil {
		profiler.Stop() // flush any running CPU profile before exiting
	}
	fmt.Fprintln(os.Stderr, "vigil-agents:", err)
	os.Exit(1)
}
