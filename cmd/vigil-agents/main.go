// vigil-agents runs the deployment shape of the paper's Figure 2 on one
// machine: emulated hosts run 007 agents over the packet fabric and ship
// their vote reports to a centralized analysis collector over real
// loopback TCP; the collector tallies each epoch and prints the verdicts.
//
// With -collector, vigil-agents instead becomes a remote reporter for a
// vigild networked collector (vigild -collector-listen ...): it drives a
// local engine and streams reports, cycle tokens and retransmissions over
// a resumable transport session that survives partitions and collector
// restarts.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"

	"vigil"
	"vigil/internal/cluster"
	"vigil/internal/engine"
	"vigil/internal/ingest"
	"vigil/internal/metrics"
	"vigil/internal/prof"
	"vigil/internal/runutil"
	"vigil/internal/scenario"
	"vigil/internal/stats"
	"vigil/internal/topology"
	"vigil/internal/vote"
)

// profiler is shared with fail so error exits still flush a running CPU
// profile.
var profiler *prof.Profiler

func main() {
	epochs := flag.Int("epochs", 3, "epochs to run")
	failures := flag.Int("failures", 2, "failed links to inject")
	rate := flag.Float64("rate", 0.03, "failed-link drop rate")
	conns := flag.Int("conns", 5, "connections per host per epoch")
	seed := flag.Uint64("seed", 1, "random seed")
	listen := flag.String("listen", "127.0.0.1:0", "collector listen address")
	collector := flag.String("collector", "", "remote vigild collector address (switches to the resumable ingest transport)")
	plane := flag.String("plane", "flow", "engine plane in -collector mode: flow or packet")
	session := flag.Uint64("session", 0, "transport session ID in -collector mode")
	grace := flag.Int("grace", 0, "collector grace window in -collector mode (0 = default 2)")
	profiler = prof.Register()
	flag.Parse()

	if err := profiler.Start(); err != nil {
		fail(err)
	}
	defer func() {
		if err := profiler.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "vigil-agents:", err)
		}
	}()

	if *collector != "" {
		runIngestAgent(*collector, *plane, *session, *epochs, *failures, *grace, *rate, *seed)
		return
	}

	em, err := vigil.NewEmulation(vigil.EmulationConfig{
		Topo: must(vigil.NewTopology(vigil.TestClusterTopology)), Seed: *seed,
	})
	if err != nil {
		fail(err)
	}
	topo := em.Topo

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fail(err)
	}
	srv := cluster.ServeCollector(em.Agent, ln)
	defer srv.Close()
	fmt.Printf("analysis collector listening on %s\n", srv.Addr())

	rep, err := cluster.DialReporter(srv.Addr())
	if err != nil {
		fail(err)
	}
	defer rep.Close()
	em.Reporter = func(r vote.Report) {
		if err := rep.Report(r); err != nil {
			fmt.Fprintln(os.Stderr, "report:", err)
		}
	}

	rng := stats.NewRNG(*seed + 3)
	var bad []vigil.LinkID
	pool := topo.LinksOfClass(topology.L1Down)
	for i := 0; i < *failures; i++ {
		l := pool[rng.Intn(len(pool))]
		if err := em.InjectFailure(l, *rate); err != nil {
			fail(err)
		}
		bad = append(bad, l)
		fmt.Printf("injected %.1f%% loss on %s\n", *rate*100, topo.LinkName(l))
	}

	// First Ctrl-C finishes the running epoch, then the defers flush the
	// profile and close the collector cleanly; a second one force-kills.
	ctx, stopSignals := runutil.SignalContext(context.Background())
	defer stopSignals()

	for e := 0; e < *epochs && ctx.Err() == nil; e++ {
		em.StartWorkload(vigil.Workload{
			Pattern:        vigil.UniformTraffic(),
			ConnsPerHost:   vigil.IntRange{Lo: *conns, Hi: *conns},
			PacketsPerFlow: vigil.IntRange{Lo: 50, Hi: 100},
		}, 20*vigil.Second)
		res := em.RunEpoch()
		fmt.Printf("\nepoch %d: %d reports over TCP (%d total received)\n",
			e, res.Tally.Flows(), srv.Received.Load())
		for i, lv := range res.Ranking {
			if i >= 5 {
				break
			}
			marker := ""
			for _, b := range bad {
				if b == lv.Link {
					marker = "  <-- injected"
				}
			}
			fmt.Printf("  %6.2f  %s%s\n", lv.Votes, topo.LinkName(lv.Link), marker)
		}
		fmt.Printf("  detected: %d link(s)\n", len(res.Detected))
		for _, l := range res.Detected {
			fmt.Printf("    %s\n", topo.LinkName(l))
		}
	}
}

// runIngestAgent is the -collector mode: drive a local engine and stream
// its epochs to a remote vigild collector over the resumable transport.
// The topology must match the collector's (vigild uses the same quick
// config per plane), and the collector's grace window must match -grace.
func runIngestAgent(addr, plane string, session uint64, epochs, failures, grace int, rate float64, seed uint64) {
	pl := engine.Plane(plane)
	if !pl.Valid() {
		fail(fmt.Errorf("unknown plane %q (want flow or packet)", plane))
	}
	topoCfg := scenario.QuickTopo
	if pl == engine.Packet {
		topoCfg = scenario.PacketQuickTopo
	}
	topo, err := topology.New(topoCfg)
	if err != nil {
		fail(err)
	}
	eng, err := engine.New(engine.Config{Plane: pl, Topo: topo, Seed: seed})
	if err != nil {
		fail(err)
	}
	rng := stats.NewRNG(seed + 3)
	pool := topo.LinksOfClass(topology.L1Down)
	for i := 0; i < failures; i++ {
		l := pool[rng.Intn(len(pool))]
		if err := eng.InjectFailure(l, rate); err != nil {
			fail(err)
		}
		fmt.Printf("injected %.1f%% loss on %s\n", rate*100, topo.LinkName(l))
	}
	ctr := &metrics.TransportCounters{}
	ctx, stopSignals := runutil.SignalContext(context.Background())
	defer stopSignals()
	fmt.Printf("streaming %d epochs to %s (session %d)\n", epochs, addr, session)
	err = ingest.RunAgent(ctx, ingest.AgentConfig{
		Engine:   eng,
		Addr:     addr,
		Session:  session,
		Grace:    grace,
		Epochs:   epochs,
		Seed:     seed,
		Counters: ctr,
	})
	if err != nil && err != context.Canceled {
		fail(err)
	}
	fmt.Printf("session done: %d frames sent (%d replayed), %d dials (%d failed), %d reconnects, %d resumes\n",
		ctr.FramesSent.Load(), ctr.FramesResent.Load(), ctr.Dials.Load(),
		ctr.DialFailures.Load(), ctr.Reconnects.Load(), ctr.Resumes.Load())
}

func must(t *vigil.Topology, err error) *vigil.Topology {
	if err != nil {
		fail(err)
	}
	return t
}

func fail(err error) {
	if profiler != nil {
		profiler.Stop() // flush any running CPU profile before exiting
	}
	fmt.Fprintln(os.Stderr, "vigil-agents:", err)
	os.Exit(1)
}
