// vigil-scenario runs the dynamic failure scenarios: scripted multi-epoch
// sequences of time-varying link conditions (flaps, intermittent drops,
// failure waves, congestion bursts, churn), each epoch analyzed by 007 and
// scored against that epoch's ground truth.
//
// Scenarios run on either evaluation plane: the flow-level simulator (§6,
// the default) or the packet-level cluster emulation (§7/§8), where every
// data packet, ACK, traceroute probe and ICMP reply is emulated
// individually.
//
// Usage:
//
//	vigil-scenario -list                     # names and titles
//	vigil-scenario -name link-flap           # run one scenario
//	vigil-scenario -name all -seed 3         # every scenario
//	vigil-scenario -name failure-wave -epochs 30 -timeline
//	vigil-scenario -name link-flap -plane packet
//	vigil-scenario -name intermittent-failure -plane both -epochs 8
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"vigil"
	"vigil/internal/prof"
	"vigil/internal/runutil"
)

// profiler is shared with fail so error exits still flush a running CPU
// profile.
var profiler *prof.Profiler

func fail(err error) {
	if profiler != nil {
		profiler.Stop()
	}
	fmt.Fprintln(os.Stderr, "vigil-scenario:", err)
	os.Exit(1)
}

func main() {
	name := flag.String("name", "all", "scenario name, or 'all'")
	list := flag.Bool("list", false, "list scenario names and exit")
	seed := flag.Uint64("seed", 7, "base random seed")
	epochs := flag.Int("epochs", 0, "override the scenario's scripted epoch count (0 = spec default)")
	plane := flag.String("plane", "flow", "evaluation plane: flow, packet, or both")
	parallel := flag.Int("par", 0, "epoch engine worker count on the flow plane (0 = all cores); results are identical at any setting")
	packetWorkers := flag.Int("packet-workers", 0, "pod-sharded DES worker count on the packet plane (0 = single-threaded scheduler); results are identical at any setting")
	timeline := flag.Bool("timeline", true, "print the per-epoch timeline table")
	profiler = prof.Register()
	flag.Parse()

	if err := profiler.Start(); err != nil {
		fail(err)
	}

	var planes []vigil.Plane
	switch *plane {
	case "flow":
		planes = []vigil.Plane{vigil.OnFlowPlane}
	case "packet":
		planes = []vigil.Plane{vigil.OnPacketPlane}
	case "both":
		planes = []vigil.Plane{vigil.OnFlowPlane, vigil.OnPacketPlane}
	default:
		profiler.Stop()
		fmt.Fprintf(os.Stderr, "vigil-scenario: unknown plane %q (want flow, packet or both)\n", *plane)
		os.Exit(2)
	}

	if *list {
		for _, info := range vigil.Scenarios() {
			fmt.Printf("%-22s %s\n", info.Name, info.Title)
		}
		profiler.Stop()
		return
	}

	var names []string
	if *name == "all" {
		for _, info := range vigil.Scenarios() {
			names = append(names, info.Name)
		}
	} else {
		names = strings.Split(*name, ",")
	}

	// First Ctrl-C finishes the current scenario, then exits cleanly with
	// profiles flushed; a second one force-kills.
	ctx, stopSignals := runutil.SignalContext(context.Background())
	interrupted := false
runs:
	for _, n := range names {
		n = strings.TrimSpace(n)
		for _, pl := range planes {
			if ctx.Err() != nil {
				interrupted = true
				break runs
			}
			res, err := vigil.RunScenario(n, vigil.ScenarioConfig{
				Seed:          *seed,
				Epochs:        *epochs,
				Plane:         pl,
				Parallelism:   *parallel,
				PacketWorkers: *packetWorkers,
			})
			if err != nil {
				fail(err)
			}
			render(n, res, *timeline)
		}
	}
	stopSignals()
	if interrupted {
		fmt.Fprintln(os.Stderr, "vigil-scenario: interrupted; remaining runs skipped")
	}
	if err := profiler.Stop(); err != nil {
		fmt.Fprintln(os.Stderr, "vigil-scenario:", err)
		os.Exit(1)
	}
}

func render(name string, res *vigil.ScenarioResult, timeline bool) {
	fmt.Printf("== scenario %s (%s plane) ==\n\n", name, res.Plane)
	if timeline {
		tab := vigil.Table{
			Title:   "per-epoch timeline",
			Columns: []string{"epoch", "active", "detected", "tp", "fp", "fn", "acc", "drops"},
		}
		for _, es := range res.Epochs {
			tab.AddRow(
				es.Epoch,
				len(es.ActiveLinks),
				len(es.Detected),
				es.Detection.TruePos,
				es.Detection.FalsePos,
				es.Detection.FalseNeg,
				fmt.Sprintf("%.3f", es.Accuracy),
				es.TotalDrops,
			)
		}
		if err := tab.RenderASCII(os.Stdout); err != nil {
			fail(err)
		}
	}
	fmt.Printf("epochs: %d total, %d active, %d quiet (%d clean)\n",
		len(res.Epochs), res.ActiveEpochs, res.QuietEpochs, res.QuietClean)
	fmt.Printf("pooled detection over active epochs: precision %.3f (tp %d, fp %d), recall %.3f (fn %d)\n",
		res.Precision, res.TruePos, res.FalsePos, res.Recall, res.FalseNeg)
	fmt.Printf("pooled attribution accuracy: %.3f over %d failure-crossing flows\n\n",
		res.Accuracy, res.Considered)
}
