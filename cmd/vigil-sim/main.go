// vigil-sim runs one flow-level simulation epoch and prints 007's
// localization output: the vote heat-map, Algorithm 1's detections and the
// ground-truth score.
//
// Usage:
//
//	vigil-sim -failures 3 -rate 0.005
//	vigil-sim -pods 4 -tors 16 -t1 16 -t2 8 -hosts 16 -conns 40
package main

import (
	"flag"
	"fmt"
	"os"

	"vigil"
	"vigil/internal/prof"
	"vigil/internal/stats"
)

func main() {
	pods := flag.Int("pods", vigil.DefaultSimTopology.Pods, "pods")
	tors := flag.Int("tors", vigil.DefaultSimTopology.ToRsPerPod, "ToRs per pod")
	t1 := flag.Int("t1", vigil.DefaultSimTopology.T1PerPod, "tier-1 switches per pod")
	t2 := flag.Int("t2", vigil.DefaultSimTopology.T2, "tier-2 switches")
	hosts := flag.Int("hosts", vigil.DefaultSimTopology.HostsPerToR, "hosts per ToR")
	conns := flag.Int("conns", 60, "connections per host per epoch")
	failures := flag.Int("failures", 1, "failed links to inject")
	rate := flag.Float64("rate", 0.005, "failed-link drop rate")
	epochs := flag.Int("epochs", 1, "epochs to run")
	seed := flag.Uint64("seed", 1, "random seed")
	top := flag.Int("top", 10, "ranking entries to print")
	parallel := flag.Int("par", 0, "epoch pipeline workers (0 = all cores); results are identical at any setting")
	profiler := prof.Register()
	flag.Parse()

	if err := profiler.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "vigil-sim:", err)
		os.Exit(1)
	}

	sim, err := vigil.NewSimulation(vigil.SimConfig{
		Topology: vigil.TopologyConfig{
			Pods: *pods, ToRsPerPod: *tors, T1PerPod: *t1, T2: *t2, HostsPerToR: *hosts,
		},
		Workload: vigil.Workload{
			Pattern:        vigil.UniformTraffic(),
			ConnsPerHost:   vigil.IntRange{Lo: *conns, Hi: *conns},
			PacketsPerFlow: vigil.IntRange{Lo: 100, Hi: 100},
		},
		Seed:        *seed,
		Parallelism: *parallel,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "vigil-sim:", err)
		os.Exit(1)
	}
	topo := sim.Topology()
	rng := stats.NewRNG(*seed + 99)
	classes := []vigil.LinkClass{vigil.L1Up, vigil.L1Down, vigil.L2Up, vigil.L2Down}
	for i := 0; i < *failures; i++ {
		links := topo.LinksOfClass(classes[rng.Intn(len(classes))])
		l := links[rng.Intn(len(links))]
		if err := sim.InjectFailure(l, *rate); err != nil {
			fmt.Fprintln(os.Stderr, "vigil-sim:", err)
			os.Exit(1)
		}
		fmt.Printf("injected: %s at %.3f%%\n", vigil.LinkName(topo, l), *rate*100)
	}

	for e := 0; e < *epochs; e++ {
		rep := sim.RunEpoch()
		fmt.Printf("\nepoch %d: %d flows, %d failed, %d drops\n",
			e, rep.TotalFlows, rep.FailedFlows, rep.TotalDrops)
		fmt.Printf("top %d links by votes:\n", *top)
		for i, lv := range rep.Ranking {
			if i >= *top {
				break
			}
			marker := ""
			for _, f := range rep.FailedLinks {
				if f == lv.Link {
					marker = "  <-- injected failure"
				}
			}
			fmt.Printf("  %5.2f  %s%s\n", lv.Votes, vigil.LinkName(topo, lv.Link), marker)
		}
		fmt.Printf("Algorithm 1 detected %d link(s):\n", len(rep.Detected))
		for _, l := range rep.Detected {
			fmt.Printf("  %s\n", vigil.LinkName(topo, l))
		}
		fmt.Printf("per-flow accuracy %.1f%% over %d failure-crossing flows; precision %.2f recall %.2f\n",
			rep.Accuracy*100, rep.FlowsScored, rep.Detection.Precision, rep.Detection.Recall)
	}

	if err := profiler.Stop(); err != nil {
		fmt.Fprintln(os.Stderr, "vigil-sim:", err)
		os.Exit(1)
	}
}
