// vigil-bench converts `go test -bench -benchmem` output on stdin into the
// repo's benchmark-trajectory JSON (BENCH_N.json): one record per benchmark
// with ns/op, B/op and allocs/op, plus the host metadata Go prints. CI runs
// it after the epoch benchmarks so every PR leaves a machine-readable perf
// point behind:
//
//	go test -run XXX -bench 'Epoch' -benchmem -count=3 . | vigil-bench > BENCH_N.json
//
// where N is the current PR number (CI emits BENCH_8.json today); the file
// name is the only thing that changes from PR to PR.
//
// With `go test -count=N` the same benchmark name appears N times; those
// samples merge into one record keeping the MINIMUM ns/op (and the B/op and
// allocs/op of that fastest sample), with Samples recording how many runs
// backed it. Min-of-N is the standard noise filter for shared CI runners:
// the fastest run is the least-perturbed one, so deltas between BENCH_N.json
// files track the code, not the neighbors.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Result is one benchmark record: the fastest of its name's samples.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"b_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// Samples counts the `-count` repetitions merged into this record
	// (min-of-N); omitted when the benchmark ran once.
	Samples int `json:"samples,omitempty"`
}

// Output is the emitted document. NumCPU and GOMAXPROCS describe the
// machine vigil-bench ran on — CI runs it on the same runner as the
// benchmarks — so a flat parallel curve in the benchmark records is
// self-explaining: num_cpu 1 means the workers were serialized by the
// host, not by the scheduler.
type Output struct {
	GOOS       string   `json:"goos,omitempty"`
	GOARCH     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	NumCPU     int      `json:"num_cpu"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Package    string   `json:"pkg,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	out := Output{NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
	index := make(map[string]int) // name -> position in out.Benchmarks
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			out.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			out.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			out.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			out.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			r, ok := parseBench(line)
			if !ok {
				continue
			}
			i, seen := index[r.Name]
			if !seen {
				index[r.Name] = len(out.Benchmarks)
				out.Benchmarks = append(out.Benchmarks, r)
				continue
			}
			merge(&out.Benchmarks[i], r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "vigil-bench:", err)
		os.Exit(1)
	}
	if len(out.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "vigil-bench: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "vigil-bench:", err)
		os.Exit(1)
	}
}

// merge folds a repeated sample into the kept record, retaining the fastest
// sample's numbers whole (its iteration count and memory stats belong
// together) and bumping the sample count.
func merge(kept *Result, next Result) {
	if kept.Samples == 0 {
		kept.Samples = 1
	}
	next.Samples = kept.Samples + 1
	if next.NsPerOp < kept.NsPerOp {
		*kept = next
		return
	}
	kept.Samples = next.Samples
}

// parseBench parses one benchmark result line, e.g.
//
//	BenchmarkEpochParallel/1-8  5  14927332 ns/op  2288324 B/op  477 allocs/op
func parseBench(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix Go appends to the name.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v := fields[i]
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp, _ = strconv.ParseFloat(v, 64)
		case "B/op":
			r.BytesPerOp, _ = strconv.ParseInt(v, 10, 64)
		case "allocs/op":
			r.AllocsPerOp, _ = strconv.ParseInt(v, 10, 64)
		}
	}
	if r.NsPerOp == 0 {
		return Result{}, false
	}
	return r, true
}
