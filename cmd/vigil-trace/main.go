// vigil-trace demonstrates 007's path discovery against the emulated
// packet fabric: it opens one lossy connection, lets the monitoring agent
// catch the retransmission, and prints the traceroute the path discovery
// agent assembled — alongside the path the data packets actually took.
package main

import (
	"flag"
	"fmt"
	"os"

	"vigil"
	"vigil/internal/everflow"
	"vigil/internal/stats"
	"vigil/internal/traffic"
	"vigil/internal/vote"
)

func main() {
	rate := flag.Float64("rate", 0.05, "drop rate injected on the flow's T1→ToR link")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	em, err := vigil.NewEmulation(vigil.EmulationConfig{
		Topo: mustTopo(), Seed: *seed,
	})
	if err != nil {
		fail(err)
	}
	topo := em.Topo
	ef := everflow.New(topo, nil)
	em.Net.AddTap(ef.Tap())

	rng := stats.NewRNG(*seed + 1)
	src := topo.HostAt(0, 0, 0)
	dst := topo.HostAt(0, 7, 2)
	tuple := vigil.FiveTuple{
		SrcIP: topo.Hosts[src].IP, DstIP: topo.Hosts[dst].IP,
		SrcPort: uint16(rng.IntRange(32768, 65535)), DstPort: 443, Proto: 6,
	}
	path, err := em.Router.Path(src, dst, tuple)
	if err != nil {
		fail(err)
	}
	bad := path.Links[2]
	if err := em.InjectFailure(bad, *rate); err != nil {
		fail(err)
	}
	fmt.Printf("flow %v\ninjected %.1f%% loss on %s\n\n", tuple, *rate*100, topo.LinkName(bad))

	var reports []vote.Report
	em.Reporter = func(r vote.Report) { reports = append(reports, r) }
	em.StartFlow(traffic.Flow{Src: src, Dst: dst, Tuple: tuple, Packets: 120}, 0)
	em.RunEpoch()

	if len(reports) == 0 {
		fmt.Println("flow did not retransmit; raise -rate and retry")
		return
	}
	r := reports[0]
	fmt.Printf("007 traceroute (partial=%v, %d retransmissions):\n", r.Partial, r.Retx)
	for i, l := range r.Path {
		fmt.Printf("  hop %d: %s\n", i, topo.LinkName(l))
	}
	fmt.Println("\ndata path per EverFlow mirrors:")
	if want, ok := ef.PathOf(tuple); ok {
		match := len(want) == len(r.Path)
		for i, l := range want {
			fmt.Printf("  hop %d: %s\n", i, topo.LinkName(l))
			if match && r.Path[i] != l {
				match = false
			}
		}
		fmt.Printf("\ntraceroute matches data path: %v\n", match)
	}
	var traces, limited int64
	for _, h := range em.Hosts {
		traces += h.Path.Traces
		limited += h.Path.RateLimited
	}
	fmt.Printf("traceroutes sent: %d (rate-limited: %d); switch ICMP budget Tmax=100/s, host budget Ct=%.2f/s\n",
		traces, limited, vigil.TracerouteBudget(topo.Cfg, 100))
}

func mustTopo() *vigil.Topology {
	t, err := vigil.NewTopology(vigil.TestClusterTopology)
	if err != nil {
		fail(err)
	}
	return t
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "vigil-trace:", err)
	os.Exit(1)
}
