package vigil_test

// One benchmark per table and figure of the paper, per DESIGN.md's
// experiment index. Each iteration regenerates the experiment at Quick
// scale (the Full-scale numbers come from `vigil-lab -run all`); the
// benchmark names give `go test -bench` a one-command tour of the whole
// evaluation.

import (
	"fmt"
	"testing"

	"vigil"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := vigil.RunExperiment(id, vigil.ExperimentOptions{
			Scale: vigil.QuickScale,
			Seeds: 1,
			Seed:  uint64(i) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Tables) == 0 {
			b.Fatalf("%s produced no tables", id)
		}
	}
}

func BenchmarkFig1(b *testing.B)         { benchExperiment(b, "fig1") }
func BenchmarkTable1(b *testing.B)       { benchExperiment(b, "table1") }
func BenchmarkFig3(b *testing.B)         { benchExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)         { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)         { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)         { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)         { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)         { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)         { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)        { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)        { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)        { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)        { benchExperiment(b, "fig13") }
func BenchmarkNetSize(b *testing.B)      { benchExperiment(b, "netsize") }
func BenchmarkCluster2(b *testing.B)     { benchExperiment(b, "cluster2") }
func BenchmarkCluster3(b *testing.B)     { benchExperiment(b, "cluster3") }
func BenchmarkProdEverflow(b *testing.B) { benchExperiment(b, "prod-everflow") }
func BenchmarkProdReboots(b *testing.B)  { benchExperiment(b, "prod-reboots") }
func BenchmarkTheorem1(b *testing.B)     { benchExperiment(b, "theorem1") }
func BenchmarkTheorem2(b *testing.B)     { benchExperiment(b, "theorem2") }

func BenchmarkAblAdjust(b *testing.B)    { benchExperiment(b, "abl-adjust") }
func BenchmarkAblThreshold(b *testing.B) { benchExperiment(b, "abl-threshold") }
func BenchmarkAblVoteValue(b *testing.B) { benchExperiment(b, "abl-votevalue") }
func BenchmarkAblRateLimit(b *testing.B) { benchExperiment(b, "abl-ratelimit") }

// BenchmarkEpochPaperScale measures one full 007 cycle — simulate, vote,
// detect, classify — at the paper's 4160-link scale, fanned out over all
// cores (SimConfig.Parallelism defaults to GOMAXPROCS).
func BenchmarkEpochPaperScale(b *testing.B) {
	benchEpochAtParallelism(b, 0)
}

// BenchmarkEpochParallel charts the speedup curve of the sharded epoch
// engine: the same seeded workload at fixed worker counts.
func BenchmarkEpochParallel(b *testing.B) {
	for _, parallelism := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("%d", parallelism), func(b *testing.B) {
			benchEpochAtParallelism(b, parallelism)
		})
	}
}

// BenchmarkEpochSteadyState measures the no-failure epoch — the always-on
// monitoring regime 007 spends nearly all of its life in. Every flow takes
// the survival-gated fast path: resolve the path into a per-worker buffer,
// sum precomputed log-survival terms, one uniform draw, done. ReportAllocs
// documents the zero-allocation contract: the fixed per-epoch overhead is
// tens of allocations against ~67k flows, i.e. ~0 allocs per flow.
func BenchmarkEpochSteadyState(b *testing.B) {
	sim, err := vigil.NewSimulation(vigil.SimConfig{Seed: 1, Parallelism: 1})
	if err != nil {
		b.Fatal(err)
	}
	sim.RunEpoch() // warm the reusable epoch scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := sim.RunEpoch()
		if rep.TotalFlows == 0 {
			b.Fatal("no flows")
		}
	}
}

// BenchmarkClusterEpoch measures one packet-plane epoch at the §7 test
// cluster scale (40 hosts, 80 physical links): every data packet, ACK,
// traceroute probe and ICMP reply is emulated individually through the DES
// fabric while the host agents run the real 007 cycle. This is the other
// plane of BENCH_N.json's trajectory — the flow-plane epochs above are the
// throughput story, this is the fidelity story.
func BenchmarkClusterEpoch(b *testing.B) {
	topo, err := vigil.NewTopology(vigil.TestClusterTopology)
	if err != nil {
		b.Fatal(err)
	}
	em, err := vigil.NewEmulation(vigil.EmulationConfig{Topo: topo, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	bad := topo.LinksOfClass(vigil.L1Down)[3]
	if err := em.InjectFailure(bad, 0.01); err != nil {
		b.Fatal(err)
	}
	workload := vigil.Workload{
		Pattern:        vigil.UniformTraffic(),
		ConnsPerHost:   vigil.IntRange{Lo: 10, Hi: 10},
		PacketsPerFlow: vigil.IntRange{Lo: 75, Hi: 150},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		em.StartWorkload(workload, 20*vigil.Second)
		res := em.RunEpoch()
		if res == nil || em.LastEpoch().Flows == 0 {
			b.Fatal("no flows in cluster epoch")
		}
	}
}

// BenchmarkClusterEpochParallel charts the speedup curve of the
// pod-sharded packet-plane DES: the same seeded epoch on an eight-pod Clos
// at fixed worker counts, bit-identical results at every point (the
// sharded-scheduler tests pin that), wall-clock the only variable. The
// flow-plane mirror is BenchmarkEpochParallel above.
func BenchmarkClusterEpochParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("%d", workers), func(b *testing.B) {
			topo, err := vigil.NewTopology(vigil.TopologyConfig{Pods: 8, ToRsPerPod: 4, T1PerPod: 4, T2: 4, HostsPerToR: 2})
			if err != nil {
				b.Fatal(err)
			}
			em, err := vigil.NewEmulation(vigil.EmulationConfig{Topo: topo, Seed: 1, EphemeralFlows: true, Workers: workers})
			if err != nil {
				b.Fatal(err)
			}
			bad := topo.LinksOfClass(vigil.L1Down)[3]
			if err := em.InjectFailure(bad, 0.01); err != nil {
				b.Fatal(err)
			}
			workload := vigil.Workload{
				Pattern:        vigil.UniformTraffic(),
				ConnsPerHost:   vigil.IntRange{Lo: 10, Hi: 10},
				PacketsPerFlow: vigil.IntRange{Lo: 75, Hi: 150},
			}
			// Warm the per-shard pools.
			em.StartWorkload(workload, 20*vigil.Second)
			em.RunEpoch()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				em.StartWorkload(workload, 20*vigil.Second)
				res := em.RunEpoch()
				if res == nil || em.LastEpoch().Flows == 0 {
					b.Fatal("no flows in cluster epoch")
				}
			}
		})
	}
}

// BenchmarkClusterSteadyState is the packet plane's zero-allocation
// contract: the same §7-scale epoch as BenchmarkClusterEpoch but with no
// injected failure and ephemeral flow recycling — the always-on monitoring
// regime. After warmup every pool (packet buffers, scheduler lanes,
// connections, flow records, tuple maps) is hot, so a whole epoch of
// per-packet emulation settles at a few dozen allocations.
func BenchmarkClusterSteadyState(b *testing.B) {
	topo, err := vigil.NewTopology(vigil.TestClusterTopology)
	if err != nil {
		b.Fatal(err)
	}
	em, err := vigil.NewEmulation(vigil.EmulationConfig{Topo: topo, Seed: 1, EphemeralFlows: true})
	if err != nil {
		b.Fatal(err)
	}
	workload := vigil.Workload{
		Pattern:        vigil.UniformTraffic(),
		ConnsPerHost:   vigil.IntRange{Lo: 10, Hi: 10},
		PacketsPerFlow: vigil.IntRange{Lo: 75, Hi: 150},
	}
	// Warm the pools.
	em.StartWorkload(workload, 20*vigil.Second)
	em.RunEpoch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		em.StartWorkload(workload, 20*vigil.Second)
		res := em.RunEpoch()
		if res == nil || em.LastEpoch().Flows == 0 {
			b.Fatal("no flows in cluster epoch")
		}
	}
}

// BenchmarkEpochDatacenter is the scaling benchmark of the datacenter flow
// plane: one full 007 cycle on the multi-cluster reference fabric —
// 142,848 directed links, ~2.07M flows per epoch — fanned out over all
// cores. This is the fused pipeline with nothing cached: every epoch
// generates, routes and scores every flow.
func BenchmarkEpochDatacenter(b *testing.B) {
	sim, err := vigil.NewSimulation(vigil.SimConfig{
		Topology:      vigil.DatacenterSimTopology.Flatten(),
		Seed:          1,
		TracerouteCap: 10,
	})
	if err != nil {
		b.Fatal(err)
	}
	bad := sim.Topology().LinksOfClass(vigil.L1Up)[7]
	if err := sim.InjectFailure(bad, 0.003); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := sim.RunEpoch()
		if rep.TotalFlows < 2_000_000 {
			b.Fatalf("datacenter epoch ran only %d flows", rep.TotalFlows)
		}
	}
}

// benchClusterEpochDatacenter runs the packet plane's datacenter epoch: 32
// pods of individually emulated packets on DatacenterPacketTopology, one
// DES shard per pod. ConnsPerHost is trimmed to 4 so a full epoch stays a
// sub-second CI unit while still pushing ~1k flows and ~100k packets
// through 32 conservative-window shards.
func benchClusterEpochDatacenter(b *testing.B, workers int) {
	b.Helper()
	topo, err := vigil.NewDatacenterTopology(vigil.DatacenterPacketTopology)
	if err != nil {
		b.Fatal(err)
	}
	em, err := vigil.NewEmulation(vigil.EmulationConfig{Topo: topo, Seed: 1, EphemeralFlows: true, Workers: workers})
	if err != nil {
		b.Fatal(err)
	}
	bad := topo.LinksOfClass(vigil.L1Down)[3]
	if err := em.InjectFailure(bad, 0.01); err != nil {
		b.Fatal(err)
	}
	workload := vigil.Workload{
		Pattern:        vigil.UniformTraffic(),
		ConnsPerHost:   vigil.IntRange{Lo: 4, Hi: 4},
		PacketsPerFlow: vigil.IntRange{Lo: 75, Hi: 150},
	}
	// Warm the per-shard pools and the scheduler's worker pool.
	em.StartWorkload(workload, 20*vigil.Second)
	em.RunEpoch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		em.StartWorkload(workload, 20*vigil.Second)
		res := em.RunEpoch()
		if res == nil || em.LastEpoch().Flows == 0 {
			b.Fatal("no flows in datacenter cluster epoch")
		}
	}
}

// BenchmarkClusterEpochDatacenter is the packet plane's raised scale
// target (ROADMAP item 4): a full multi-cluster datacenter epoch at pod
// parallelism. The parallel variant charts the worker curve; on the 1-CPU
// CI runner it records parity (see BENCH_N.json's num_cpu/gomaxprocs
// header), on multi-core hosts the speedup.
func BenchmarkClusterEpochDatacenter(b *testing.B) {
	benchClusterEpochDatacenter(b, vigil.DatacenterPacketTopology.Pods())
}

func BenchmarkClusterEpochDatacenterParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("%d", workers), func(b *testing.B) {
			benchClusterEpochDatacenter(b, workers)
		})
	}
}

// BenchmarkEpochDatacenterDelta is the same datacenter fabric in
// incremental mode: the flow set froze after a warmup epoch, and each
// iteration changes one link's rate so the epoch re-scores only the flows
// crossing it — the steady operating mode of a long-running datacenter
// simulation, and the headline win of the delta engine over the full
// pipeline above.
func BenchmarkEpochDatacenterDelta(b *testing.B) {
	sim, err := vigil.NewSimulation(vigil.SimConfig{
		Topology:      vigil.DatacenterSimTopology.Flatten(),
		Seed:          1,
		TracerouteCap: 10,
		Incremental:   true,
	})
	if err != nil {
		b.Fatal(err)
	}
	bad := sim.Topology().LinksOfClass(vigil.L1Up)[7]
	sim.RunEpoch() // warmup: full epoch, builds the delta cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Alternate the rate so every iteration dirties the link and runs a
		// real delta (an unchanged rate would be a no-op epoch).
		rate := 0.003 + float64(i%2)*0.002
		if err := sim.InjectFailure(bad, rate); err != nil {
			b.Fatal(err)
		}
		rep := sim.RunEpoch()
		if rep.TotalFlows < 2_000_000 {
			b.Fatalf("datacenter delta epoch ran only %d flows", rep.TotalFlows)
		}
	}
}

func benchEpochAtParallelism(b *testing.B, parallelism int) {
	b.Helper()
	sim, err := vigil.NewSimulation(vigil.SimConfig{Seed: 1, Parallelism: parallelism})
	if err != nil {
		b.Fatal(err)
	}
	bad := sim.Topology().LinksOfClass(vigil.L1Up)[3]
	sim.InjectFailure(bad, 0.005)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := sim.RunEpoch()
		if rep.TotalFlows == 0 {
			b.Fatal("no flows")
		}
	}
}

func BenchmarkExtLatency(b *testing.B) { benchExperiment(b, "ext-latency") }
